// EC cluster chaos & integrity tests: injected node outages and lost drain
// acks against the maintenance machinery, checksum-verified cell reads with
// exact detected==injected accounting, reconstruction-floor retention, and
// metric export with difs.*-parity names.
#include <gtest/gtest.h>

#include <memory>

#include "difs/ec_cluster.h"
#include "faults/fault_injector.h"
#include "telemetry/metrics.h"
#include "tests/testing/device_builder.h"

namespace salamander {
namespace {

using testing_util::TestSsdConfig;
using testing_util::TinyGeometry;

struct EcChaosOptions {
  FaultConfig device_faults;
  FaultConfig cluster_faults;
  uint32_t nodes = 7;
  uint32_t nominal_pec = 1000000;  // effectively wear-free by default
  bool grace_drain = false;
};

EcCluster MakeEcChaosCluster(const EcChaosOptions& options) {
  EcConfig config;
  config.nodes = options.nodes;
  config.devices_per_node = 1;
  config.data_cells = 4;
  config.parity_cells = 2;
  config.cell_opages = 64;
  config.fill_fraction = 0.4;
  config.seed = 515;
  config.faults = std::make_shared<FaultInjector>(options.cluster_faults,
                                                  /*stream_id=*/1000);
  auto factory = [options](uint32_t index) {
    SsdConfig ssd_config =
        TestSsdConfig(SsdKind::kShrinkS, TinyGeometry(), options.nominal_pec,
                      /*seed=*/7000 + index * 23);
    if (options.grace_drain) {
      ssd_config.minidisk.drain_before_decommission = true;
      ssd_config.minidisk.max_draining = 3;
    }
    ssd_config.faults = std::make_shared<FaultInjector>(options.device_faults,
                                                        /*stream_id=*/index);
    return std::make_unique<SsdDevice>(SsdKind::kShrinkS, ssd_config);
  };
  return EcCluster(config, factory);
}

uint64_t InjectedReadCorrupt(EcCluster& cluster) {
  uint64_t injected = 0;
  for (uint32_t i = 0; i < cluster.device_count(); ++i) {
    const FaultInjector* injector = cluster.device(i).faults();
    if (injector != nullptr) {
      injected += injector->stats().count(FaultSite::kReadCorrupt);
    }
  }
  return injected;
}

// An injected outage makes one node unreachable: cell writes to it are
// skipped (not failed), reads route around it, and the node rejoins after
// its tick countdown with no stripe ever lost — data was unreachable, never
// destroyed.
TEST(EcChaosTest, NodeOutageSkipsWritesAndRejoins) {
  EcChaosOptions options;
  options.cluster_faults.node_outage = 1.0;  // every maintenance tick
  options.cluster_faults.node_outage_ticks_max = 2;
  options.cluster_faults.seed = 11;
  EcCluster cluster = MakeEcChaosCluster(options);
  ASSERT_TRUE(cluster.Bootstrap().ok());
  // Maintenance ticks fire every 256 ops (auto interval with an injector
  // attached); cycle through several outages and rejoins.
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(cluster.StepWrites(300).ok());
    ASSERT_TRUE(cluster.StepReads(100).ok());
  }
  const EcStats& stats = cluster.stats();
  EXPECT_GT(stats.maintenance_ticks, 0u);
  EXPECT_GT(stats.node_outages, 1u);
  EXPECT_GT(stats.outage_write_skips, 0u);
  for (int i = 0; i < 16 && cluster.outage_node() >= 0; ++i) {
    ASSERT_TRUE(cluster.StepWrites(256).ok());
  }
  cluster.ForceReconcile();
  EXPECT_EQ(cluster.stats().stripes_lost, 0u);
}

// The EC analog of diFS read-repair: every checksum mismatch on a cell read
// retires the cell and rebuilds it from the k survivors, and the
// detected==injected accounting is exact across foreground, degraded, and
// rebuild reads.
TEST(EcChaosTest, CorruptionIsDetectedExactlyAndRebuilt) {
  EcChaosOptions options;
  options.device_faults.read_corrupt = 0.05;
  options.device_faults.seed = 9;
  EcCluster cluster = MakeEcChaosCluster(options);
  ASSERT_TRUE(cluster.Bootstrap().ok());
  for (int burst = 0; burst < 4; ++burst) {
    ASSERT_TRUE(cluster.StepWrites(150).ok());
    ASSERT_TRUE(cluster.StepReads(300).ok());
  }
  cluster.ForceReconcile();
  const uint64_t injected = InjectedReadCorrupt(cluster);
  EXPECT_GT(injected, 0u);
  EXPECT_EQ(cluster.stats().integrity_detected, injected);
  EXPECT_GT(cluster.stats().integrity_marked_bad, 0u);
  EXPECT_GT(cluster.stats().cells_rebuilt, 0u);
  EXPECT_EQ(cluster.stats().stripes_lost, 0u);
}

// With every device corrupting every read, retiring cells would march every
// stripe below its reconstruction floor. MarkCellBad must refuse at k live
// cells: corrupt cells are retained, and stripe loss from corruption alone
// is impossible by construction.
TEST(EcChaosTest, ReconstructionFloorRetainsCorruptCells) {
  EcChaosOptions options;
  options.device_faults.read_corrupt = 1.0;
  options.device_faults.seed = 9;
  EcCluster cluster = MakeEcChaosCluster(options);
  ASSERT_TRUE(cluster.Bootstrap().ok());
  ASSERT_TRUE(cluster.StepReads(600).ok());
  cluster.ForceReconcile();
  EXPECT_GT(cluster.stats().integrity_retained_cells, 0u);
  EXPECT_EQ(cluster.stats().stripes_lost, 0u);
  for (StripeId s = 0; s < cluster.total_stripes(); ++s) {
    EXPECT_GE(cluster.stripe(s).live_cells(), 4u) << "stripe " << s;
  }
}

// Lost AckDrains leave mDisks in kDraining limbo (EC retires the cells
// immediately — no grace window — but the device still waits for the ack).
// Maintenance must re-send until the device can reclaim the space.
TEST(EcChaosTest, LostAckDrainIsEventuallyResent) {
  EcChaosOptions options;
  options.nominal_pec = 25;  // wear fast enough to trigger drains
  options.grace_drain = true;
  options.cluster_faults.ack_drain_lost = 0.5;
  options.cluster_faults.seed = 13;
  EcCluster cluster = MakeEcChaosCluster(options);
  ASSERT_TRUE(cluster.Bootstrap().ok());
  uint64_t steps = 0;
  while (cluster.stats().acks_lost == 0 && steps < 600000 &&
         cluster.alive_devices() >= 6) {
    ASSERT_TRUE(cluster.StepWrites(500).ok());
    steps += 500;
  }
  ASSERT_GT(cluster.stats().acks_lost, 0u) << "no ack was ever lost";
  // Each maintenance re-send is a fresh 50/50 draw; drive reconciliation
  // until no alive device is stuck in drain limbo.
  for (int i = 0; i < 32; ++i) {
    cluster.ForceReconcile();
  }
  EXPECT_GT(cluster.stats().drains_acked, 0u);
  for (uint32_t d = 0; d < cluster.device_count(); ++d) {
    if (!cluster.device(d).failed()) {
      EXPECT_EQ(cluster.device(d).manager().draining_minidisks(), 0u)
          << "device " << d << " stuck in drain limbo";
    }
  }
  EXPECT_EQ(cluster.stats().stripes_lost, 0u);
}

// The ec.* metric names mirror difs.* so fleet dashboards can treat the two
// cluster kinds uniformly.
TEST(EcChaosTest, CollectMetricsExportsDifsParityNames) {
  EcChaosOptions options;
  options.device_faults.read_corrupt = 0.05;
  options.device_faults.seed = 9;
  options.cluster_faults.node_outage = 0.5;
  options.cluster_faults.seed = 11;
  EcCluster cluster = MakeEcChaosCluster(options);
  ASSERT_TRUE(cluster.Bootstrap().ok());
  ASSERT_TRUE(cluster.StepWrites(300).ok());
  ASSERT_TRUE(cluster.StepReads(300).ok());

  MetricRegistry registry;
  cluster.CollectMetrics(registry);
  const auto counter = [&registry](const char* name) {
    const Counter* c = registry.FindCounter(name);
    return c == nullptr ? ~uint64_t{0} : c->value();
  };
  EXPECT_EQ(counter("ec.foreground_logical_writes"),
            cluster.stats().foreground_logical_writes);
  EXPECT_EQ(counter("ec.cells_rebuilt"), cluster.stats().cells_rebuilt);
  EXPECT_EQ(counter("ec.node_outages"), cluster.stats().node_outages);
  EXPECT_EQ(counter("ec.integrity.detected"),
            cluster.stats().integrity_detected);
  EXPECT_EQ(counter("ec.integrity.marked_bad"),
            cluster.stats().integrity_marked_bad);
  EXPECT_EQ(counter("ec.integrity.retained_cells"),
            cluster.stats().integrity_retained_cells);
  EXPECT_NE(registry.FindGauge("ec.alive_devices"), nullptr);
  EXPECT_NE(registry.FindGauge("ec.pending_rebuild_backlog"), nullptr);
  // Cluster-level injected faults land in their own subtree.
  EXPECT_NE(registry.FindCounter("cluster_faults.injected.node_outage"),
            nullptr);
}

// The full chaos mix twice with identical seeds: stats must be
// bit-identical — the EC maintenance/injector schedule is deterministic.
TEST(EcChaosTest, RepeatedRunsAreBitIdentical) {
  const auto run = [] {
    EcChaosOptions options;
    options.device_faults.transient_unavailable = 0.1;
    options.device_faults.read_corrupt = 0.02;
    options.device_faults.event_drop = 0.1;
    options.device_faults.seed = 21;
    options.cluster_faults.node_outage = 0.2;
    options.cluster_faults.ack_drain_lost = 0.2;
    options.cluster_faults.seed = 17;
    EcCluster cluster = MakeEcChaosCluster(options);
    EXPECT_TRUE(cluster.Bootstrap().ok());
    cluster.device(2).Crash();
    EXPECT_TRUE(cluster.StepWrites(600).ok());
    EXPECT_TRUE(cluster.StepReads(300).ok());
    cluster.ForceReconcile();
    return cluster.stats();
  };
  const EcStats a = run();
  const EcStats b = run();
  EXPECT_EQ(a.foreground_device_writes, b.foreground_device_writes);
  EXPECT_EQ(a.cells_lost, b.cells_lost);
  EXPECT_EQ(a.cells_rebuilt, b.cells_rebuilt);
  EXPECT_EQ(a.degraded_reads, b.degraded_reads);
  EXPECT_EQ(a.integrity_detected, b.integrity_detected);
  EXPECT_EQ(a.integrity_marked_bad, b.integrity_marked_bad);
  EXPECT_EQ(a.node_outages, b.node_outages);
  EXPECT_EQ(a.acks_lost, b.acks_lost);
  EXPECT_EQ(a.maintenance_ticks, b.maintenance_ticks);
  EXPECT_EQ(a.stripes_lost, b.stripes_lost);
}

}  // namespace
}  // namespace salamander
