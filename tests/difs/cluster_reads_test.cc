// diFS read-path and placement-topology tests.
#include <gtest/gtest.h>

#include <set>

#include "difs/cluster.h"
#include "tests/testing/device_builder.h"

namespace salamander {
namespace {

using testing_util::TestSsdConfig;
using testing_util::TinyGeometry;

std::function<std::unique_ptr<SsdDevice>(uint32_t)> Factory(
    SsdKind kind, uint32_t nominal_pec, double read_disturb = 0.0) {
  return [kind, nominal_pec, read_disturb](uint32_t index) {
    SsdConfig config = TestSsdConfig(kind, TinyGeometry(), nominal_pec,
                                     /*seed=*/4000 + index * 13);
    config.ftl.wear.read_disturb_per_read = read_disturb;
    return std::make_unique<SsdDevice>(kind, config);
  };
}

TEST(DifsReadsTest, ReadsSpreadAcrossReplicas) {
  DifsConfig config;
  config.nodes = 4;
  config.replication = 3;
  config.chunk_opages = 64;
  config.fill_fraction = 0.4;
  config.seed = 11;
  DifsCluster cluster(config, Factory(SsdKind::kShrinkS, 1000000));
  ASSERT_TRUE(cluster.Bootstrap().ok());
  ASSERT_TRUE(cluster.StepReads(3000).ok());
  // Every device hosting replicas should have served some reads.
  uint32_t devices_with_reads = 0;
  for (uint32_t d = 0; d < cluster.device_count(); ++d) {
    if (cluster.device(d).ftl().stats().host_reads > 0) {
      ++devices_with_reads;
    }
  }
  EXPECT_GE(devices_with_reads, 3u);
  EXPECT_EQ(cluster.stats().uncorrectable_reads, 0u);
}

TEST(DifsReadsTest, ReadDisturbTriggersScrubRepairs) {
  // Pathological read disturb: hammering reads without refreshing pages must
  // eventually produce uncorrectable reads, which the diFS scrubs (rewrites).
  DifsConfig config;
  config.nodes = 4;
  config.replication = 3;
  config.chunk_opages = 64;
  config.fill_fraction = 0.3;
  config.seed = 21;
  DifsCluster cluster(config,
                      Factory(SsdKind::kShrinkS, 1000000,
                              /*read_disturb=*/2e-6));
  ASSERT_TRUE(cluster.Bootstrap().ok());
  uint64_t rounds = 0;
  while (cluster.stats().uncorrectable_reads == 0 && rounds < 200) {
    ASSERT_TRUE(cluster.StepReads(5000).ok());
    ++rounds;
  }
  EXPECT_GT(cluster.stats().uncorrectable_reads, 0u);
  EXPECT_GT(cluster.stats().scrub_repairs, 0u);
  // Scrubbing restores readability: data is never lost to read disturb.
  EXPECT_EQ(cluster.chunks_lost(), 0u);
}

TEST(DifsPlacementTest, MultiDeviceNodesStillPlaceNodeDisjoint) {
  DifsConfig config;
  config.nodes = 3;
  config.devices_per_node = 2;  // 6 devices, 3 failure domains
  config.replication = 3;
  config.chunk_opages = 64;
  config.fill_fraction = 0.4;
  config.seed = 31;
  DifsCluster cluster(config, Factory(SsdKind::kShrinkS, 1000000));
  ASSERT_TRUE(cluster.Bootstrap().ok());
  ASSERT_GT(cluster.total_chunks(), 0u);
  for (ChunkId c = 0; c < cluster.total_chunks(); ++c) {
    const Chunk& chunk = cluster.chunk(c);
    std::set<uint32_t> nodes;
    for (const ReplicaLocation& replica : chunk.replicas) {
      nodes.insert(cluster.node_of_device(replica.device));
    }
    EXPECT_EQ(nodes.size(), 3u) << "chunk " << c << " shares a node";
  }
}

TEST(DifsPlacementTest, RecoveryKeepsNodeDisjointness) {
  DifsConfig config;
  config.nodes = 5;
  config.replication = 3;
  config.chunk_opages = 64;
  config.fill_fraction = 0.4;
  config.seed = 41;
  DifsCluster cluster(config, Factory(SsdKind::kShrinkS, /*nominal_pec=*/25));
  ASSERT_TRUE(cluster.Bootstrap().ok());
  uint64_t steps = 0;
  while (cluster.stats().replicas_recovered < 5 && steps < 400000) {
    ASSERT_TRUE(cluster.StepWrites(1000).ok());
    steps += 1000;
  }
  ASSERT_GT(cluster.stats().replicas_recovered, 0u);
  for (ChunkId c = 0; c < cluster.total_chunks(); ++c) {
    const Chunk& chunk = cluster.chunk(c);
    if (chunk.lost) {
      continue;
    }
    std::set<uint32_t> nodes;
    uint32_t live = 0;
    for (const ReplicaLocation& replica : chunk.replicas) {
      if (replica.live && !replica.draining) {
        nodes.insert(cluster.node_of_device(replica.device));
        ++live;
      }
    }
    EXPECT_EQ(nodes.size(), live) << "chunk " << c << " node collision";
  }
}

TEST(DifsReadsTest, CapacityAccountingMatchesDevices) {
  DifsConfig config;
  config.nodes = 4;
  config.replication = 3;
  config.chunk_opages = 64;
  config.seed = 51;
  DifsCluster cluster(config, Factory(SsdKind::kRegenS, 1000000));
  uint64_t expected = 0;
  for (uint32_t d = 0; d < cluster.device_count(); ++d) {
    expected += cluster.device(d).live_capacity_bytes();
  }
  EXPECT_EQ(cluster.live_capacity_bytes(), expected);
  EXPECT_EQ(cluster.initial_capacity_bytes(), expected);
}

}  // namespace
}  // namespace salamander
