// End-to-end grace-period protocol: device drains -> diFS re-replicates
// (possibly reading from the draining mDisk itself) -> diFS acks -> device
// reclaims.
#include <gtest/gtest.h>

#include "difs/cluster.h"
#include "tests/testing/device_builder.h"

namespace salamander {
namespace {

using testing_util::TestSsdConfig;
using testing_util::TinyGeometry;

std::function<std::unique_ptr<SsdDevice>(uint32_t)> DrainFactory(
    uint32_t nominal_pec) {
  return [nominal_pec](uint32_t index) {
    SsdConfig config = TestSsdConfig(SsdKind::kShrinkS, TinyGeometry(),
                                     nominal_pec, /*seed=*/3000 + index * 11);
    config.minidisk.drain_before_decommission = true;
    config.minidisk.max_draining = 3;
    return std::make_unique<SsdDevice>(SsdKind::kShrinkS, config);
  };
}

DifsConfig DrainClusterConfig() {
  DifsConfig config;
  config.nodes = 5;
  config.devices_per_node = 1;
  config.replication = 3;
  config.chunk_opages = 64;
  config.fill_fraction = 0.5;
  config.seed = 808;
  return config;
}

TEST(DrainProtocolTest, DrainsAreAckedAfterReReplication) {
  DifsCluster cluster(DrainClusterConfig(), DrainFactory(/*nominal_pec=*/25));
  ASSERT_TRUE(cluster.Bootstrap().ok());
  uint64_t steps = 0;
  while (cluster.stats().drains_acked == 0 && steps < 600000 &&
         cluster.alive_devices() >= 3) {
    ASSERT_TRUE(cluster.StepWrites(500).ok());
    steps += 500;
  }
  const DifsStats& stats = cluster.stats();
  ASSERT_GT(stats.drains_started, 0u) << "no drain ever started";
  EXPECT_GT(stats.drains_acked, 0u) << "diFS never acked a drain";
  // The grace window plus spare capacity should keep chunks safe.
  EXPECT_EQ(cluster.chunks_lost(), 0u);
  EXPECT_EQ(cluster.chunks_under_replicated(), 0u);
}

TEST(DrainProtocolTest, GracefulDrainsCauseNoDataLoss) {
  // As long as no drain window is force-closed, the grace protocol must not
  // lose chunks: every retiring mDisk stays readable until its chunks are
  // re-replicated.
  DifsCluster cluster(DrainClusterConfig(), DrainFactory(/*nominal_pec=*/25));
  ASSERT_TRUE(cluster.Bootstrap().ok());
  for (uint64_t steps = 0; steps < 120000 && cluster.alive_devices() >= 3;
       steps += 1000) {
    ASSERT_TRUE(cluster.StepWrites(1000).ok());
    if (cluster.stats().drain_window_losses > 0) {
      break;  // forced drains may legitimately lose the race
    }
    ASSERT_EQ(cluster.chunks_lost(), 0u)
        << "data loss without any forced drain";
  }
}

TEST(DrainProtocolTest, DrainedReadsServeDuringGraceWindow) {
  DifsCluster cluster(DrainClusterConfig(), DrainFactory(/*nominal_pec=*/25));
  ASSERT_TRUE(cluster.Bootstrap().ok());
  uint64_t steps = 0;
  while (cluster.stats().drains_started == 0 && steps < 600000 &&
         cluster.alive_devices() >= 3) {
    ASSERT_TRUE(cluster.StepWrites(500).ok());
    steps += 500;
  }
  ASSERT_GT(cluster.stats().drains_started, 0u);
  // Reads across the cluster must keep succeeding.
  ASSERT_TRUE(cluster.StepReads(500).ok());
  EXPECT_EQ(cluster.chunks_lost(), 0u);
}

}  // namespace
}  // namespace salamander
