// Chaos tests: the diFS recovery machinery against the fault injector —
// lossy/duplicating/delaying event channels, transient device errors, node
// outages, lost drain acks, and whole-device crashes. The contract under
// test: zero chunk loss while concurrent failures stay below R, convergence
// after every fault burst, and bit-identical behavior across repeated runs.
#include <gtest/gtest.h>

#include <memory>

#include "difs/cluster.h"
#include "faults/fault_injector.h"
#include "tests/testing/device_builder.h"

namespace salamander {
namespace {

using testing_util::TestSsdConfig;
using testing_util::TinyGeometry;

struct ChaosOptions {
  FaultConfig device_faults;
  FaultConfig cluster_faults;
  uint32_t nodes = 6;
  uint32_t nominal_pec = 1000000;  // effectively wear-free by default
  SsdKind kind = SsdKind::kShrinkS;
  bool grace_drain = false;
};

DifsCluster MakeChaosCluster(const ChaosOptions& options) {
  DifsConfig config;
  config.nodes = options.nodes;
  config.devices_per_node = 1;
  config.replication = 3;
  config.chunk_opages = 64;
  config.fill_fraction = 0.5;
  config.seed = 424242;
  config.faults = std::make_shared<FaultInjector>(options.cluster_faults,
                                                  /*stream_id=*/1000);
  auto factory = [options](uint32_t index) {
    SsdConfig ssd_config =
        TestSsdConfig(options.kind, TinyGeometry(), options.nominal_pec,
                      /*seed=*/1000 + index);
    if (options.grace_drain) {
      ssd_config.minidisk.drain_before_decommission = true;
      ssd_config.minidisk.max_draining = 3;
    }
    ssd_config.faults = std::make_shared<FaultInjector>(options.device_faults,
                                                        /*stream_id=*/index);
    return std::make_unique<SsdDevice>(options.kind, ssd_config);
  };
  return DifsCluster(config, factory);
}

FaultConfig LossyChannel(double p = 0.2) {
  FaultConfig config;
  config.event_drop = p;
  config.event_duplicate = p;
  config.event_delay = p;
  config.event_delay_waves_max = 3;
  config.seed = 77;
  return config;
}

// A crashed device's brick notifications travel the same lossy channel as
// everything else; resync must make recovery whole regardless of what gets
// through. One crash at a time keeps concurrent failures below R = 3.
TEST(ChaosTest, CrashUnderLossyEventChannelLosesNoChunks) {
  ChaosOptions options;
  options.device_faults = LossyChannel();
  DifsCluster cluster = MakeChaosCluster(options);
  ASSERT_TRUE(cluster.Bootstrap().ok());
  const uint64_t total = cluster.total_chunks();
  ASSERT_GT(total, 0u);

  for (uint32_t victim = 0; victim < 3; ++victim) {
    cluster.device(victim).Crash();
    ASSERT_TRUE(cluster.StepWrites(200).ok());
    cluster.ForceReconcile();
    ASSERT_TRUE(cluster.CheckInvariants().ok());
    EXPECT_EQ(cluster.pending_recovery_backlog(), 0u)
        << "burst " << victim << " did not converge";
  }
  EXPECT_EQ(cluster.chunks_lost(), 0u);
  EXPECT_EQ(cluster.chunks_under_replicated(), 0u);
  EXPECT_EQ(cluster.chunks_fully_replicated(), total);
  EXPECT_GT(cluster.stats().replicas_recovered, 0u);
}

// Total event-channel loss: every notification is dropped. Periodic
// reconciliation alone must discover the crashed device and recover.
TEST(ChaosTest, ResyncRecoversFromTotalEventLoss) {
  ChaosOptions options;
  options.device_faults.event_drop = 1.0;
  options.device_faults.seed = 5;
  DifsCluster cluster = MakeChaosCluster(options);
  ASSERT_TRUE(cluster.Bootstrap().ok());
  const uint64_t total = cluster.total_chunks();

  cluster.device(0).Crash();
  // Nothing arrives via events; ForceReconcile's ResyncDevice pass must
  // notice the failed device by inspecting ground truth.
  cluster.ForceReconcile();
  ASSERT_TRUE(cluster.CheckInvariants().ok());
  EXPECT_EQ(cluster.chunks_lost(), 0u);
  EXPECT_EQ(cluster.chunks_under_replicated(), 0u);
  EXPECT_EQ(cluster.chunks_fully_replicated(), total);
  EXPECT_GT(cluster.stats().resync_repairs, 0u);
}

// Duplicate delivery of every event must be idempotent: same recovery, same
// bookkeeping, no double-counted losses or phantom capacity.
TEST(ChaosTest, DuplicatedEventsAreIdempotent) {
  ChaosOptions options;
  options.device_faults.event_duplicate = 1.0;
  options.device_faults.seed = 6;
  DifsCluster cluster = MakeChaosCluster(options);
  ASSERT_TRUE(cluster.Bootstrap().ok());
  const uint64_t total = cluster.total_chunks();

  cluster.device(1).Crash();
  cluster.ForceReconcile();
  ASSERT_TRUE(cluster.CheckInvariants().ok());
  EXPECT_EQ(cluster.chunks_lost(), 0u);
  EXPECT_EQ(cluster.chunks_fully_replicated(), total);
  // Each replica on the crashed device is lost exactly once despite every
  // kDecommissioned arriving twice.
  EXPECT_EQ(cluster.stats().replicas_lost,
            cluster.stats().replicas_recovered);
}

TEST(ChaosTest, TransientUnavailabilityIsRetriedWithBackoff) {
  ChaosOptions options;
  options.device_faults.transient_unavailable = 0.3;
  options.device_faults.seed = 9;
  DifsCluster cluster = MakeChaosCluster(options);
  ASSERT_TRUE(cluster.Bootstrap().ok());
  ASSERT_TRUE(cluster.StepWrites(300).ok());
  ASSERT_TRUE(cluster.StepReads(300).ok());
  const DifsStats& stats = cluster.stats();
  EXPECT_GT(stats.transient_retries, 0u);
  EXPECT_GT(stats.backoff_ns, 0u);
  // p=0.3 with 4 retries: give-ups are possible but must be rare next to
  // retries (a give-up needs 5 consecutive busy draws).
  EXPECT_LT(stats.transient_giveups * 50, stats.transient_retries + 50);
  EXPECT_EQ(cluster.chunks_lost(), 0u);
  ASSERT_TRUE(cluster.CheckInvariants().ok());
}

TEST(ChaosTest, NodeOutageSkipsWritesAndRejoins) {
  ChaosOptions options;
  options.cluster_faults.node_outage = 1.0;  // every maintenance tick
  options.cluster_faults.node_outage_ticks_max = 2;
  options.cluster_faults.seed = 11;
  DifsCluster cluster = MakeChaosCluster(options);
  ASSERT_TRUE(cluster.Bootstrap().ok());
  // Maintenance ticks fire every 256 ops (auto interval with faults
  // attached); run enough ops to cycle through several outages + rejoins.
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(cluster.StepWrites(300).ok());
    ASSERT_TRUE(cluster.StepReads(100).ok());
  }
  const DifsStats& stats = cluster.stats();
  EXPECT_GT(stats.node_outages, 1u);
  EXPECT_GT(stats.outage_write_skips, 0u);
  // Outages are transient: after the soak the cluster converges with no
  // chunk loss (no data was destroyed, only unreachable).
  for (int i = 0; i < 16 && cluster.outage_node() >= 0; ++i) {
    ASSERT_TRUE(cluster.StepWrites(256).ok());
  }
  cluster.ForceReconcile();
  ASSERT_TRUE(cluster.CheckInvariants().ok());
  EXPECT_EQ(cluster.chunks_lost(), 0u);
  EXPECT_EQ(cluster.pending_recovery_backlog(), 0u);
}

// Lost AckDrains leave mDisks in kDraining limbo; resync must re-send the
// ack so the device can reclaim the space.
TEST(ChaosTest, LostAckDrainIsEventuallyResent) {
  ChaosOptions options;
  options.kind = SsdKind::kShrinkS;
  options.nominal_pec = 25;  // wear fast enough to trigger drains
  options.grace_drain = true;
  options.nodes = 5;
  options.cluster_faults.ack_drain_lost = 0.5;
  options.cluster_faults.seed = 13;
  DifsCluster cluster = MakeChaosCluster(options);
  ASSERT_TRUE(cluster.Bootstrap().ok());
  uint64_t steps = 0;
  while (cluster.stats().acks_lost == 0 && steps < 600000 &&
         cluster.alive_devices() >= 3) {
    ASSERT_TRUE(cluster.StepWrites(500).ok());
    steps += 500;
  }
  ASSERT_GT(cluster.stats().acks_lost, 0u) << "no ack was ever lost";
  // Every drain is eventually resolved: the periodic resync re-sends acks
  // that were lost on the wire (each retry is a fresh 50/50 draw), so no
  // alive device is left with an mDisk stuck in kDraining limbo. Re-sends
  // can ack the same drain more than once (device-side the ack is
  // idempotent), so the assertion is on device state, not counter equality.
  for (int i = 0; i < 32; ++i) {
    cluster.ForceReconcile();
  }
  EXPECT_GT(cluster.stats().drains_acked, 0u);
  for (uint32_t d = 0; d < cluster.device_count(); ++d) {
    if (!cluster.device(d).failed()) {
      EXPECT_EQ(cluster.device(d).manager().draining_minidisks(), 0u)
          << "device " << d << " stuck in drain limbo";
    }
  }
  ASSERT_TRUE(cluster.CheckInvariants().ok());
}

// Queue-overflow drops (bounded pending_events_) are a different beast from
// injected channel drops: the device counts them, and the cluster resyncs
// the moment it sees the counter move — here already at construction, where
// a 4-event queue can't hold the 12-event format burst.
TEST(ChaosTest, OverflowDropsTriggerImmediateResync) {
  DifsConfig config;
  config.nodes = 4;
  config.devices_per_node = 1;
  config.replication = 3;
  config.chunk_opages = 64;
  config.fill_fraction = 0.5;
  config.seed = 99;
  DifsCluster cluster(
      config, [](uint32_t index) {
        SsdConfig ssd_config =
            TestSsdConfig(SsdKind::kShrinkS, TinyGeometry(),
                          /*nominal_pec=*/1000000, /*seed=*/1000 + index);
        ssd_config.minidisk.max_pending_events = 4;
        return std::make_unique<SsdDevice>(SsdKind::kShrinkS, ssd_config);
      });
  // 8 of each device's 12 kCreated events overflowed, yet the resync
  // registered every mDisk: full placement capacity, nothing missing.
  EXPECT_EQ(cluster.free_slots(), 48u);
  EXPECT_GT(cluster.stats().resync_repairs, 0u);
  ASSERT_TRUE(cluster.Bootstrap().ok());
  EXPECT_EQ(cluster.total_chunks(), 8u);
  ASSERT_TRUE(cluster.CheckInvariants().ok());
}

// The full mix at once, repeated twice: identical seeds must produce
// identical stats — the injector's schedule is deterministic and
// independent of anything but its own streams.
TEST(ChaosTest, RepeatedRunsAreBitIdentical) {
  const auto run = [] {
    ChaosOptions options;
    options.device_faults = LossyChannel(0.1);
    options.device_faults.transient_unavailable = 0.1;
    options.device_faults.program_fail = 0.002;
    options.device_faults.read_corrupt = 0.002;
    options.cluster_faults.node_outage = 0.2;
    options.cluster_faults.ack_drain_lost = 0.2;
    options.cluster_faults.seed = 17;
    DifsCluster cluster = MakeChaosCluster(options);
    EXPECT_TRUE(cluster.Bootstrap().ok());
    cluster.device(2).Crash();
    EXPECT_TRUE(cluster.StepWrites(600).ok());
    EXPECT_TRUE(cluster.StepReads(300).ok());
    cluster.ForceReconcile();
    EXPECT_TRUE(cluster.CheckInvariants().ok());
    return cluster.stats();
  };
  const DifsStats a = run();
  const DifsStats b = run();
  EXPECT_EQ(a.foreground_opage_writes, b.foreground_opage_writes);
  EXPECT_EQ(a.recovery_opage_writes, b.recovery_opage_writes);
  EXPECT_EQ(a.replicas_recovered, b.replicas_recovered);
  EXPECT_EQ(a.replicas_lost, b.replicas_lost);
  EXPECT_EQ(a.chunks_lost, b.chunks_lost);
  EXPECT_EQ(a.transient_retries, b.transient_retries);
  EXPECT_EQ(a.transient_giveups, b.transient_giveups);
  EXPECT_EQ(a.backoff_ns, b.backoff_ns);
  EXPECT_EQ(a.resync_passes, b.resync_passes);
  EXPECT_EQ(a.resync_repairs, b.resync_repairs);
  EXPECT_EQ(a.node_outages, b.node_outages);
  EXPECT_EQ(a.outage_write_skips, b.outage_write_skips);
  EXPECT_EQ(a.acks_lost, b.acks_lost);
  EXPECT_EQ(a.uncorrectable_reads, b.uncorrectable_reads);
  EXPECT_EQ(a.scrub_repairs, b.scrub_repairs);
  EXPECT_EQ(a.maintenance_ticks, b.maintenance_ticks);
}

// An attached-but-all-zero injector must not change behavior at all: the
// injector performs no draws, so the cluster (and device) RNG schedules are
// untouched relative to a run with no injector.
TEST(ChaosTest, ZeroProbabilityInjectorChangesNothing) {
  const auto run = [](bool attach_injectors) {
    ChaosOptions options;
    if (!attach_injectors) {
      DifsConfig config;
      config.nodes = options.nodes;
      config.devices_per_node = 1;
      config.replication = 3;
      config.chunk_opages = 64;
      config.fill_fraction = 0.5;
      config.seed = 424242;
      auto factory = [options](uint32_t index) {
        return std::make_unique<SsdDevice>(
            options.kind, TestSsdConfig(options.kind, TinyGeometry(),
                                        options.nominal_pec,
                                        /*seed=*/1000 + index));
      };
      DifsCluster cluster(config, factory);
      EXPECT_TRUE(cluster.Bootstrap().ok());
      EXPECT_TRUE(cluster.StepWrites(400).ok());
      EXPECT_TRUE(cluster.StepReads(200).ok());
      return cluster.stats();
    }
    DifsCluster cluster = MakeChaosCluster(options);  // zero-prob faults
    EXPECT_TRUE(cluster.Bootstrap().ok());
    EXPECT_TRUE(cluster.StepWrites(400).ok());
    EXPECT_TRUE(cluster.StepReads(200).ok());
    return cluster.stats();
  };
  const DifsStats with = run(true);
  const DifsStats without = run(false);
  EXPECT_EQ(with.foreground_opage_writes, without.foreground_opage_writes);
  EXPECT_EQ(with.recovery_opage_writes, without.recovery_opage_writes);
  EXPECT_EQ(with.replicas_lost, without.replicas_lost);
  EXPECT_EQ(with.replicas_recovered, without.replicas_recovered);
  EXPECT_EQ(with.uncorrectable_reads, without.uncorrectable_reads);
  EXPECT_EQ(with.transient_retries, 0u);
  EXPECT_EQ(with.acks_lost, 0u);
}

// Regression (ISSUE 9 satellite 1): the transient-retry backoff used to
// double a raw uint64 each retry, so a retry budget past 63 wrapped the
// accumulated backoff_ns. Retry r now waits base << min(r, max_shift); this
// pins the exact capped sum at a budget deep in the formerly-wrapping range.
TEST(ChaosTest, TransientBackoffSaturatesAtCapBoundary) {
  DifsConfig config;
  config.nodes = 4;
  config.devices_per_node = 1;
  config.replication = 3;
  config.chunk_opages = 16;
  config.fill_fraction = 0.25;
  config.seed = 97;
  config.max_transient_retries = 80;  // uncapped, retry 58+ would wrap
  config.transient_backoff_base_ns = 100;
  config.transient_backoff_max_shift = 16;
  config.resync_interval_ops = 1u << 30;  // keep maintenance out of the delta
  FaultConfig faults;
  faults.transient_unavailable = 1.0;  // every device op stays busy forever
  faults.seed = 13;
  auto factory = [&faults](uint32_t index) {
    SsdConfig ssd_config =
        TestSsdConfig(SsdKind::kShrinkS, TinyGeometry(),
                      /*nominal_pec=*/1000000, /*seed=*/1000 + index);
    ssd_config.faults = std::make_shared<FaultInjector>(faults, index);
    return std::make_unique<SsdDevice>(SsdKind::kShrinkS, ssd_config);
  };
  DifsCluster cluster(config, factory);
  ASSERT_TRUE(cluster.Bootstrap().ok());
  ASSERT_GT(cluster.total_chunks(), 0u);

  const uint64_t backoff_before = cluster.stats().backoff_ns;
  const uint64_t retries_before = cluster.stats().transient_retries;
  const uint64_t giveups_before = cluster.stats().transient_giveups;
  SimDuration cost = 0;
  const Status read = cluster.ReadChunkAt(0, 0, &cost);
  EXPECT_EQ(read.code(), StatusCode::kUnavailable);

  // Retries 0..16 double; 17..79 all saturate at base << 16.
  const uint64_t expected =
      uint64_t{100} * ((uint64_t{1} << 17) - 1) +
      uint64_t{63} * (uint64_t{100} << 16);
  EXPECT_EQ(cluster.stats().transient_retries - retries_before, 80u);
  EXPECT_EQ(cluster.stats().transient_giveups - giveups_before, 1u);
  EXPECT_EQ(cluster.stats().backoff_ns - backoff_before, expected);
  // The read never succeeded, so its whole cost is backoff.
  EXPECT_EQ(cost, expected);
}

}  // namespace
}  // namespace salamander
