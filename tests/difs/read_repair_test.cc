// End-to-end integrity tests for the diFS: checksum-verified replica reads
// (read-repair), the paced background scrubber, exact detected==injected
// corruption accounting, last-copy retention, and scrub determinism.
#include <gtest/gtest.h>

#include <memory>

#include "difs/cluster.h"
#include "faults/fault_injector.h"
#include "telemetry/metrics.h"
#include "tests/testing/device_builder.h"

namespace salamander {
namespace {

using testing_util::TestSsdConfig;
using testing_util::TinyGeometry;

// A small wear-free cluster where only the devices listed in
// `corrupt_below` (indices < that bound) silently corrupt reads with
// probability `read_corrupt`.
DifsCluster MakeCorruptingCluster(double read_corrupt, uint32_t corrupt_below,
                                  uint64_t seed = 424242) {
  DifsConfig config;
  config.nodes = 6;
  config.devices_per_node = 1;
  config.replication = 3;
  config.chunk_opages = 64;
  config.fill_fraction = 0.5;
  config.seed = seed;
  auto factory = [read_corrupt, corrupt_below](uint32_t index) {
    SsdConfig ssd_config =
        TestSsdConfig(SsdKind::kShrinkS, TinyGeometry(),
                      /*nominal_pec=*/1000000, /*seed=*/1000 + index);
    FaultConfig faults;
    if (index < corrupt_below) {
      faults.read_corrupt = read_corrupt;
      faults.seed = 9;
    }
    ssd_config.faults =
        std::make_shared<FaultInjector>(faults, /*stream_id=*/index);
    return std::make_unique<SsdDevice>(SsdKind::kShrinkS, ssd_config);
  };
  return DifsCluster(config, factory);
}

// Exported counter value, or UINT64_MAX when the instrument is missing —
// a sentinel no real counter reaches in these tests, so a renamed metric
// fails the comparison instead of silently passing as 0 == 0.
uint64_t CounterOf(const MetricRegistry& registry, std::string_view name) {
  const Counter* counter = registry.FindCounter(name);
  return counter == nullptr ? ~uint64_t{0} : counter->value();
}

uint64_t InjectedReadCorrupt(const DifsCluster& cluster) {
  uint64_t injected = 0;
  for (uint32_t i = 0; i < cluster.device_count(); ++i) {
    const FaultInjector* injector = cluster.device(i).faults();
    if (injector != nullptr) {
      injected += injector->stats().count(FaultSite::kReadCorrupt);
    }
  }
  return injected;
}

// One device corrupts every read it serves. Foreground reads must detect
// each hit via the end-to-end checksum, retire the replica, re-serve from a
// survivor, and re-replicate — with zero chunk loss and full convergence.
TEST(ReadRepairTest, ForegroundReadsRepairCorruptReplicas) {
  DifsCluster cluster =
      MakeCorruptingCluster(/*read_corrupt=*/1.0, /*corrupt_below=*/1);
  ASSERT_TRUE(cluster.Bootstrap().ok());
  const uint64_t total = cluster.total_chunks();
  ASSERT_GT(total, 0u);

  ASSERT_TRUE(cluster.StepReads(400).ok());
  ASSERT_TRUE(cluster.CheckInvariants().ok());
  EXPECT_GT(cluster.stats().integrity_detected, 0u);
  EXPECT_GT(cluster.stats().integrity_marked_bad, 0u);
  EXPECT_GT(cluster.stats().integrity_survivor_reads, 0u);
  EXPECT_EQ(cluster.chunks_lost(), 0u);

  cluster.ForceReconcile();
  ASSERT_TRUE(cluster.CheckInvariants().ok());
  EXPECT_EQ(cluster.pending_recovery_backlog(), 0u);
  EXPECT_EQ(cluster.chunks_lost(), 0u);
}

// The exactness invariant: every injected kReadCorrupt draw happens under a
// cluster-issued read and is folded into integrity_detected right after that
// read — so the two counters agree exactly, across foreground reads,
// recovery reads, and scrub reads alike.
TEST(ReadRepairTest, DetectedCorruptionEqualsInjectedExactly) {
  DifsCluster cluster =
      MakeCorruptingCluster(/*read_corrupt=*/0.05, /*corrupt_below=*/6);
  ASSERT_TRUE(cluster.Bootstrap().ok());

  for (int burst = 0; burst < 4; ++burst) {
    ASSERT_TRUE(cluster.StepWrites(100).ok());
    ASSERT_TRUE(cluster.StepReads(200).ok());
    EXPECT_GT(cluster.ScrubStep(128), 0u);
    ASSERT_TRUE(cluster.CheckInvariants().ok());
  }
  cluster.ForceReconcile();
  ASSERT_TRUE(cluster.CheckInvariants().ok());

  const uint64_t injected = InjectedReadCorrupt(cluster);
  EXPECT_GT(injected, 0u);
  EXPECT_EQ(cluster.stats().integrity_detected, injected);
  EXPECT_GT(cluster.stats().scrub_opage_reads, 0u);
}

// With every device corrupting every read, retiring replicas would destroy
// all the data. The cluster must refuse to retire a chunk's last readable
// copy: corrupt data beats no data, and chunk loss from corruption alone is
// impossible by construction.
TEST(ReadRepairTest, LastReadableCopyIsNeverRetired) {
  DifsCluster cluster =
      MakeCorruptingCluster(/*read_corrupt=*/1.0, /*corrupt_below=*/6);
  ASSERT_TRUE(cluster.Bootstrap().ok());

  ASSERT_TRUE(cluster.StepReads(600).ok());
  (void)cluster.ScrubStep(512);
  ASSERT_TRUE(cluster.CheckInvariants().ok());
  EXPECT_GT(cluster.stats().integrity_retained_last_copies, 0u);
  EXPECT_EQ(cluster.chunks_lost(), 0u);
}

// The scrubber walks real device reads behind a pure-state cursor: two
// identical clusters fed the identical op sequence must end with identical
// stats, including the scrub and integrity counters.
TEST(ReadRepairTest, ScrubIsDeterministic) {
  auto run = [] {
    DifsCluster cluster =
        MakeCorruptingCluster(/*read_corrupt=*/0.05, /*corrupt_below=*/6);
    EXPECT_TRUE(cluster.Bootstrap().ok());
    for (int burst = 0; burst < 3; ++burst) {
      EXPECT_TRUE(cluster.StepWrites(80).ok());
      EXPECT_TRUE(cluster.StepReads(120).ok());
      (void)cluster.ScrubStep(256);
    }
    cluster.ForceReconcile();
    return cluster.stats();
  };
  const DifsStats a = run();
  const DifsStats b = run();
  EXPECT_EQ(a.foreground_opage_writes, b.foreground_opage_writes);
  EXPECT_EQ(a.integrity_detected, b.integrity_detected);
  EXPECT_EQ(a.integrity_marked_bad, b.integrity_marked_bad);
  EXPECT_EQ(a.integrity_survivor_reads, b.integrity_survivor_reads);
  EXPECT_EQ(a.scrub_opage_reads, b.scrub_opage_reads);
  EXPECT_EQ(a.scrub_detected, b.scrub_detected);
  EXPECT_EQ(a.scrub_passes, b.scrub_passes);
  EXPECT_EQ(a.replicas_recovered, b.replicas_recovered);
  EXPECT_EQ(a.chunks_lost, b.chunks_lost);
}

// A zero budget is a no-op, and a fault-free cluster's scrub detects nothing
// while still doing real reads (wear accounting per §4.3).
TEST(ReadRepairTest, ScrubOnCleanClusterDetectsNothing) {
  DifsCluster cluster =
      MakeCorruptingCluster(/*read_corrupt=*/0.0, /*corrupt_below=*/0);
  ASSERT_TRUE(cluster.Bootstrap().ok());
  EXPECT_EQ(cluster.ScrubStep(0), 0u);
  EXPECT_EQ(cluster.stats().scrub_opage_reads, 0u);
  const uint64_t read = cluster.ScrubStep(256);
  EXPECT_EQ(read, 256u);
  EXPECT_EQ(cluster.stats().scrub_opage_reads, 256u);
  EXPECT_EQ(cluster.stats().scrub_detected, 0u);
  EXPECT_EQ(cluster.stats().integrity_detected, 0u);
  ASSERT_TRUE(cluster.CheckInvariants().ok());
}

// The difs.integrity.* / difs.scrub.* metric names the dashboards (and the
// chaos soak's reconciliation check) scrape.
TEST(ReadRepairTest, IntegrityMetricsAreExported) {
  DifsCluster cluster =
      MakeCorruptingCluster(/*read_corrupt=*/0.05, /*corrupt_below=*/6);
  ASSERT_TRUE(cluster.Bootstrap().ok());
  ASSERT_TRUE(cluster.StepReads(200).ok());
  (void)cluster.ScrubStep(128);

  MetricRegistry registry;
  cluster.CollectMetrics(registry);
  EXPECT_EQ(CounterOf(registry, "difs.integrity.detected"),
            cluster.stats().integrity_detected);
  EXPECT_EQ(CounterOf(registry, "difs.integrity.marked_bad"),
            cluster.stats().integrity_marked_bad);
  EXPECT_EQ(CounterOf(registry, "difs.integrity.retained_last_copies"),
            cluster.stats().integrity_retained_last_copies);
  EXPECT_EQ(CounterOf(registry, "difs.integrity.survivor_reads"),
            cluster.stats().integrity_survivor_reads);
  EXPECT_EQ(CounterOf(registry, "difs.scrub.opage_reads"),
            cluster.stats().scrub_opage_reads);
  EXPECT_EQ(CounterOf(registry, "difs.scrub.detected"),
            cluster.stats().scrub_detected);
  EXPECT_EQ(CounterOf(registry, "difs.scrub.passes"),
            cluster.stats().scrub_passes);
}

}  // namespace
}  // namespace salamander
