// Suspect-window state machine, replication (DifsCluster) and erasure
// coding (EcCluster) flavors: a power-lost device holds a grace window open
// instead of triggering immediate re-replication; restart within the window
// reconciles its replicas/cells by journal generation, expiry falls back to
// the brick path, a mid-window brick closes the window, and grace = 0
// preserves the legacy declare-immediately behavior byte for byte.
#include <gtest/gtest.h>

#include <functional>
#include <memory>

#include "difs/cluster.h"
#include "difs/ec_cluster.h"
#include "ecc/tiredness.h"
#include "faults/fault_injector.h"
#include "flash/wear_model.h"
#include "ssd/ssd_device.h"

namespace salamander {
namespace {

// Small cluster devices (32 blocks x 16 fPages x 4 oPages = 2048 oPages in
// 64-oPage mDisks) whose journals always tear at power loss, so every
// restart exercises the rollback path, not just the buffer drop.
FlashGeometry ClusterGeometry() {
  FlashGeometry g;
  g.channels = 1;
  g.dies_per_channel = 1;
  g.planes_per_die = 1;
  g.blocks_per_plane = 32;
  g.fpages_per_block = 16;
  return g;
}

std::function<std::unique_ptr<SsdDevice>(uint32_t)> DeviceFactory(
    uint64_t base_seed) {
  FPageEccGeometry ecc;
  const WearModelConfig wear = WearModel::Calibrate(
      ComputeTirednessLevel(ecc, 0).max_tolerable_rber,
      /*nominal_pec=*/200000);
  return [base_seed, wear, ecc](uint32_t index) {
    FaultConfig faults;
    faults.torn_journal_write = 1.0;
    faults.seed = base_seed + index;
    SsdConfig config =
        MakeSsdConfig(SsdKind::kRegenS, ClusterGeometry(), wear,
                      FlashLatencyConfig{}, ecc, base_seed + index * 17);
    config.minidisk.msize_opages = 64;
    config.faults = std::make_shared<FaultInjector>(faults, index);
    return std::make_unique<SsdDevice>(SsdKind::kRegenS, config);
  };
}

DifsConfig TestDifsConfig(uint64_t grace_ticks) {
  DifsConfig config;
  config.nodes = 5;
  config.devices_per_node = 1;
  config.replication = 3;
  config.chunk_opages = 64;
  config.fill_fraction = 0.5;
  config.seed = 20260805;
  config.resync_interval_ops = 8;  // one maintenance tick per 8 writes
  config.suspect_grace_ticks = grace_ticks;
  return config;
}

EcConfig TestEcConfig(uint32_t grace_ticks) {
  EcConfig config;
  config.nodes = 5;
  config.devices_per_node = 1;
  config.data_cells = 2;
  config.parity_cells = 2;
  config.cell_opages = 64;
  config.fill_fraction = 0.5;
  config.seed = 20260805;
  config.maintenance_interval_ops = 8;
  config.suspect_grace_ticks = grace_ticks;
  return config;
}

// Converged, invariant-clean cluster with zero data loss: the postcondition
// every suspect-window path must reach.
void ExpectDifsHealthy(DifsCluster& cluster) {
  EXPECT_TRUE(cluster.CheckInvariants().ok());
  EXPECT_EQ(cluster.chunks_lost(), 0u);
  EXPECT_EQ(cluster.chunks_under_replicated(), 0u);
  EXPECT_EQ(cluster.pending_recovery_backlog(), 0u);
}

TEST(SuspectWindowTest, DifsRestartWithinGraceRevivesReplicas) {
  DifsCluster cluster(TestDifsConfig(/*grace_ticks=*/32),
                      DeviceFactory(101));
  ASSERT_TRUE(cluster.Bootstrap().ok());
  (void)cluster.StepWrites(64);

  const uint32_t victim = cluster.device_count() / 2;
  cluster.device(victim).Crash(SsdDevice::CrashKind::kPowerLoss);
  (void)cluster.StepWrites(96);  // 12 ticks, well inside the 32-tick grace
  const DifsStats& mid = cluster.stats();
  EXPECT_GE(mid.suspect_windows_started, 1u);
  // While suspect, the cluster must NOT have declared the replicas lost.
  EXPECT_EQ(mid.suspect_windows_expired, 0u);

  ASSERT_TRUE(cluster.device(victim).Restart().ok());
  (void)cluster.StepWrites(64);  // next maintenance tick reconciles
  cluster.ForceReconcile();

  const DifsStats& stats = cluster.stats();
  EXPECT_GE(stats.suspect_devices_returned, 1u);
  EXPECT_EQ(stats.suspect_windows_expired, 0u);
  // Reconciliation classified every replica on the returned device: fresh
  // ones revived, generation-stale ones pruned and re-replicated.
  EXPECT_GT(stats.suspect_replicas_revived + stats.suspect_replicas_stale,
            0u);
  ExpectDifsHealthy(cluster);
}

TEST(SuspectWindowTest, DifsGraceExpiryFallsBackToBrickPath) {
  DifsCluster cluster(TestDifsConfig(/*grace_ticks=*/2), DeviceFactory(202));
  ASSERT_TRUE(cluster.Bootstrap().ok());
  (void)cluster.StepWrites(64);

  cluster.device(cluster.device_count() / 2)
      .Crash(SsdDevice::CrashKind::kPowerLoss);
  (void)cluster.StepWrites(96);  // the 2-tick grace runs out
  cluster.ForceReconcile();

  const DifsStats& stats = cluster.stats();
  EXPECT_GE(stats.suspect_windows_started, 1u);
  EXPECT_GE(stats.suspect_windows_expired, 1u);
  EXPECT_EQ(stats.suspect_devices_returned, 0u);
  // Expiry re-replicated the dark device's replicas from survivors —
  // losses declared, then healed, with no chunk ever lost.
  EXPECT_GT(stats.replicas_lost, 0u);
  ExpectDifsHealthy(cluster);
}

TEST(SuspectWindowTest, DifsBrickUpgradeClosesWindow) {
  DifsCluster cluster(TestDifsConfig(/*grace_ticks=*/32), DeviceFactory(303));
  ASSERT_TRUE(cluster.Bootstrap().ok());
  (void)cluster.StepWrites(64);

  const uint32_t victim = cluster.device_count() / 2;
  cluster.device(victim).Crash(SsdDevice::CrashKind::kPowerLoss);
  (void)cluster.StepWrites(32);  // window opens...
  cluster.device(victim).Crash(SsdDevice::CrashKind::kPermanent);
  (void)cluster.StepWrites(64);  // ...and the brick upgrade closes it
  cluster.ForceReconcile();

  const DifsStats& stats = cluster.stats();
  EXPECT_GE(stats.suspect_windows_started, 1u);
  EXPECT_EQ(stats.suspect_devices_returned, 0u);
  ExpectDifsHealthy(cluster);
}

TEST(SuspectWindowTest, DifsZeroGraceKeepsLegacyBehavior) {
  DifsCluster cluster(TestDifsConfig(/*grace_ticks=*/0), DeviceFactory(404));
  ASSERT_TRUE(cluster.Bootstrap().ok());
  (void)cluster.StepWrites(64);

  const uint32_t victim = cluster.device_count() / 2;
  cluster.device(victim).Crash(SsdDevice::CrashKind::kPowerLoss);
  (void)cluster.StepWrites(48);  // losses declared at the next tick
  ASSERT_TRUE(cluster.device(victim).Restart().ok());
  (void)cluster.StepWrites(64);  // capacity re-announced and reused
  cluster.ForceReconcile();

  const DifsStats& stats = cluster.stats();
  EXPECT_EQ(stats.suspect_windows_started, 0u);
  EXPECT_EQ(stats.suspect_devices_returned, 0u);
  EXPECT_GT(stats.replicas_lost, 0u);
  ExpectDifsHealthy(cluster);
}

TEST(SuspectWindowTest, EcRestartWithinGraceRevivesCells) {
  EcCluster cluster(TestEcConfig(/*grace_ticks=*/32), DeviceFactory(505));
  ASSERT_TRUE(cluster.Bootstrap().ok());
  (void)cluster.StepWrites(64);

  const uint32_t victim = cluster.device_count() / 2;
  cluster.device(victim).Crash(SsdDevice::CrashKind::kPowerLoss);
  (void)cluster.StepWrites(96);
  ASSERT_TRUE(cluster.device(victim).Restart().ok());
  (void)cluster.StepWrites(64);
  cluster.ForceReconcile();

  const EcStats& stats = cluster.stats();
  EXPECT_GE(stats.suspect_windows_started, 1u);
  EXPECT_GE(stats.suspect_devices_returned, 1u);
  EXPECT_EQ(stats.suspect_windows_expired, 0u);
  EXPECT_GT(stats.suspect_cells_revived + stats.suspect_cells_stale, 0u);
  EXPECT_EQ(stats.stripes_lost, 0u);
  EXPECT_EQ(cluster.stripes_fully_redundant(), cluster.total_stripes());
}

// ISSUE 9 satellite: during a suspect grace window the dark device still
// *holds* its cells (they are neither lost nor rebuilt), but it cannot serve
// I/O. A foreground read of a data cell on the dark device must be served
// degraded — reconstructed from the k healthy cells — not failed with the
// device's error.
TEST(SuspectWindowTest, EcReadLogicalAtDuringGraceServesDegraded) {
  EcCluster cluster(TestEcConfig(/*grace_ticks=*/64), DeviceFactory(707));
  ASSERT_TRUE(cluster.Bootstrap().ok());
  (void)cluster.StepWrites(64);

  const uint32_t victim = cluster.device_count() / 2;
  cluster.device(victim).Crash(SsdDevice::CrashKind::kPowerLoss);
  (void)cluster.StepWrites(16);  // a maintenance tick opens the window
  ASSERT_GE(cluster.stats().suspect_windows_started, 1u);
  ASSERT_EQ(cluster.stats().suspect_windows_expired, 0u);

  const uint64_t degraded_before = cluster.stats().degraded_reads;
  const uint64_t cells_lost_before = cluster.stats().cells_lost;
  uint64_t dark_data_reads = 0;
  uint64_t healthy_data_reads = 0;
  for (StripeId id = 0; id < cluster.total_stripes(); ++id) {
    for (uint32_t c = 0; c < cluster.data_cells(); ++c) {
      const CellLocation& cell = cluster.stripe(id).cells[c];
      // Grace window: the dark device's cells are still live (held, not
      // declared lost) — that is exactly the state under test.
      ASSERT_TRUE(cell.live) << "stripe " << id << " cell " << c;
      const bool dark = cell.device == victim;
      SimDuration cost = 0;
      const Status read = cluster.ReadLogicalAt(id, c, 0, &cost);
      ASSERT_TRUE(read.ok())
          << "stripe " << id << " cell " << c << ": " << read.message();
      if (dark) {
        ++dark_data_reads;
        EXPECT_GT(cost, 0u) << "degraded read reports no service time";
      } else {
        ++healthy_data_reads;
      }
    }
  }
  ASSERT_GT(dark_data_reads, 0u) << "victim held no data cells; bad seed";
  ASSERT_GT(healthy_data_reads, 0u);
  // Every dark-cell read was served via reconstruction; healthy-cell reads
  // stayed on the direct path (read-repair can add a handful of degraded
  // serves, so this is a lower bound, not an equality).
  EXPECT_GE(cluster.stats().degraded_reads - degraded_before,
            dark_data_reads);
  // Serving reads degraded must not retire the held cells: the window is
  // still the device's to win.
  EXPECT_EQ(cluster.stats().cells_lost, cells_lost_before);
  EXPECT_EQ(cluster.stats().suspect_windows_expired, 0u);

  // The device returns within its window: held cells reconcile in place and
  // the cluster converges to full redundancy with zero stripe loss.
  ASSERT_TRUE(cluster.device(victim).Restart().ok());
  (void)cluster.StepWrites(32);
  cluster.ForceReconcile();
  EXPECT_GE(cluster.stats().suspect_devices_returned, 1u);
  EXPECT_EQ(cluster.stats().stripes_lost, 0u);
  EXPECT_EQ(cluster.stripes_fully_redundant(), cluster.total_stripes());
}

TEST(SuspectWindowTest, EcGraceExpiryRebuildsFromParity) {
  EcCluster cluster(TestEcConfig(/*grace_ticks=*/2), DeviceFactory(606));
  ASSERT_TRUE(cluster.Bootstrap().ok());
  (void)cluster.StepWrites(64);

  cluster.device(cluster.device_count() / 2)
      .Crash(SsdDevice::CrashKind::kPowerLoss);
  (void)cluster.StepWrites(96);
  cluster.ForceReconcile();

  const EcStats& stats = cluster.stats();
  EXPECT_GE(stats.suspect_windows_started, 1u);
  EXPECT_GE(stats.suspect_windows_expired, 1u);
  EXPECT_EQ(stats.suspect_devices_returned, 0u);
  // Expiry rebuilt the dark device's cells via RS decode; full redundancy
  // is restored with zero stripe loss.
  EXPECT_GT(stats.cells_rebuilt, 0u);
  EXPECT_EQ(stats.stripes_lost, 0u);
  EXPECT_EQ(cluster.stripes_fully_redundant(), cluster.total_stripes());
}

}  // namespace
}  // namespace salamander
