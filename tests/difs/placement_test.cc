// Pluggable placement policies, criticality-ordered recovery, and proactive
// health-driven drain on both cluster flavors (ISSUE 10). The
// PlacementDeterminism* suites pin the determinism contract — a uniform (or
// null) policy reproduces the legacy draws bit-for-bit; domain-spread never
// co-locates two copies in one rack, falling back counted when the topology
// cannot satisfy it — plus the hedge/dark-domain interaction and the drain
// accounting being separate from reactive recovery.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <vector>

#include "common/units.h"
#include "difs/cluster.h"
#include "difs/ec_cluster.h"
#include "difs/placement.h"
#include "ecc/tiredness.h"
#include "flash/wear_model.h"
#include "sched/queueing.h"
#include "ssd/ssd_device.h"
#include "telemetry/metrics.h"
#include "tests/testing/device_builder.h"

namespace salamander {
namespace {

using testing_util::TestSsdConfig;
using testing_util::TinyGeometry;

std::function<std::unique_ptr<SsdDevice>(uint32_t)> Factory(
    uint64_t base_seed, uint32_t nominal_pec = 1000000) {
  return [base_seed, nominal_pec](uint32_t index) {
    return std::make_unique<SsdDevice>(
        SsdKind::kShrinkS,
        TestSsdConfig(SsdKind::kShrinkS, TinyGeometry(), nominal_pec,
                      base_seed + index * 17));
  };
}

DifsConfig PlacementConfig(uint32_t nodes, uint32_t nodes_per_rack,
                           std::shared_ptr<PlacementPolicy> policy) {
  DifsConfig config;
  config.nodes = nodes;
  config.devices_per_node = 1;
  config.replication = 3;
  config.chunk_opages = 16;
  config.fill_fraction = 0.4;
  config.seed = 20260807;
  config.nodes_per_rack = nodes_per_rack;
  config.placement = std::move(policy);
  return config;
}

// Collects the full placement table: per chunk, the (device, mdisk, slot)
// triple of every live replica, in replica order. Equal tables mean the two
// clusters drew identical placements.
std::vector<std::vector<std::tuple<uint32_t, MinidiskId, uint32_t>>>
PlacementTable(const DifsCluster& cluster) {
  std::vector<std::vector<std::tuple<uint32_t, MinidiskId, uint32_t>>> table;
  for (ChunkId id = 0; id < cluster.total_chunks(); ++id) {
    std::vector<std::tuple<uint32_t, MinidiskId, uint32_t>> replicas;
    for (const ReplicaLocation& r : cluster.chunk(id).replicas) {
      if (r.live) {
        replicas.emplace_back(r.device, r.mdisk, r.slot);
      }
    }
    table.push_back(std::move(replicas));
  }
  return table;
}

void ExpectRackDisjoint(const DifsCluster& cluster) {
  for (ChunkId id = 0; id < cluster.total_chunks(); ++id) {
    std::set<uint32_t> racks;
    uint32_t live = 0;
    for (const ReplicaLocation& r : cluster.chunk(id).replicas) {
      if (r.live && !r.draining) {
        ++live;
        racks.insert(cluster.rack_of_device(r.device));
      }
    }
    EXPECT_EQ(racks.size(), live) << "chunk " << id << " co-locates a rack";
  }
}

TEST(PlacementDeterminismTest, UniformPolicyBitIdenticalToNullPolicy) {
  DifsCluster with_policy(
      PlacementConfig(6, /*nodes_per_rack=*/2, MakeUniformPlacement()),
      Factory(101));
  DifsCluster without(PlacementConfig(6, /*nodes_per_rack=*/2, nullptr),
                      Factory(101));
  ASSERT_TRUE(with_policy.Bootstrap().ok());
  ASSERT_TRUE(without.Bootstrap().ok());
  EXPECT_EQ(PlacementTable(with_policy), PlacementTable(without));
  // Same post-bootstrap traffic: the draw sequences must stay in lockstep.
  (void)with_policy.StepWrites(256);
  (void)without.StepWrites(256);
  (void)with_policy.StepReads(128);
  (void)without.StepReads(128);
  EXPECT_EQ(PlacementTable(with_policy), PlacementTable(without));
  EXPECT_EQ(with_policy.stats().placement_domain_rejections, 0u);
  EXPECT_EQ(with_policy.stats().placement_domain_fallbacks, 0u);
  EXPECT_TRUE(with_policy.CheckInvariants().ok());
}

TEST(PlacementDeterminismTest, DomainSpreadNeverColocatesReplicasInOneRack) {
  // 6 nodes in 3 racks of 2, replication 3: a spread placement must use all
  // three racks for every chunk.
  DifsCluster cluster(
      PlacementConfig(6, /*nodes_per_rack=*/2, MakeDomainSpreadPlacement(2)),
      Factory(202));
  ASSERT_TRUE(cluster.Bootstrap().ok());
  ExpectRackDisjoint(cluster);
  (void)cluster.StepWrites(512);
  cluster.ForceReconcile();
  ExpectRackDisjoint(cluster);
  // Three racks for three replicas: the constraint is satisfiable, so no
  // placement ever had to fall back to the unconstrained probe.
  EXPECT_EQ(cluster.stats().placement_domain_fallbacks, 0u);
  EXPECT_TRUE(cluster.CheckInvariants().ok());
  EXPECT_EQ(cluster.chunks_lost(), 0u);
}

TEST(PlacementDeterminismTest, SingleRackTopologyFallsBackCounted) {
  // Every node in one rack: domain-spread is unsatisfiable beyond the first
  // replica, so placements fall back — counted — to plain node-disjointness.
  DifsCluster cluster(
      PlacementConfig(4, /*nodes_per_rack=*/4, MakeDomainSpreadPlacement(4)),
      Factory(303));
  ASSERT_TRUE(cluster.Bootstrap().ok());
  EXPECT_GT(cluster.stats().placement_domain_fallbacks, 0u);
  // Fallback placements still honor node-disjointness.
  for (ChunkId id = 0; id < cluster.total_chunks(); ++id) {
    std::set<uint32_t> nodes;
    uint32_t live = 0;
    for (const ReplicaLocation& r : cluster.chunk(id).replicas) {
      if (r.live) {
        ++live;
        nodes.insert(cluster.node_of_device(r.device));
      }
    }
    EXPECT_EQ(nodes.size(), live) << "chunk " << id;
  }
  EXPECT_TRUE(cluster.CheckInvariants().ok());
}

TEST(PlacementDeterminismTest, DomainSpreadHoldsThroughRecovery) {
  DifsCluster cluster(
      PlacementConfig(8, /*nodes_per_rack=*/2, MakeDomainSpreadPlacement(2)),
      Factory(404));
  ASSERT_TRUE(cluster.Bootstrap().ok());
  (void)cluster.StepWrites(128);
  // Brick one device; recovery must re-place its replicas without ever
  // pairing two copies in one rack.
  cluster.device(1).Crash(SsdDevice::CrashKind::kPermanent);
  (void)cluster.StepWrites(256);
  cluster.ForceReconcile();
  EXPECT_EQ(cluster.chunks_lost(), 0u);
  EXPECT_EQ(cluster.chunks_under_replicated(), 0u);
  ExpectRackDisjoint(cluster);
  EXPECT_TRUE(cluster.CheckInvariants().ok());
}

TEST(PlacementDeterminismTest, CriticalityOrderDeterministicAndConvergent) {
  // Criticality ordering is a triage policy: it permutes the order within a
  // recovery pass (and therefore which placement draws each chunk consumes)
  // but must stay fully deterministic — two identical runs replay the same
  // placements bit-for-bit — and must converge to the same health as FIFO:
  // every chunk healed, nothing lost, invariants clean.
  const auto run = [](bool criticality) {
    DifsConfig config =
        PlacementConfig(8, /*nodes_per_rack=*/2, MakeDomainSpreadPlacement(2));
    config.criticality_ordered_recovery = criticality;
    DifsCluster cluster(config, Factory(505));
    EXPECT_TRUE(cluster.Bootstrap().ok());
    (void)cluster.StepWrites(128);
    // A two-device repair storm: some chunks drop to 1 readable copy.
    cluster.device(2).Crash(SsdDevice::CrashKind::kPermanent);
    cluster.device(5).Crash(SsdDevice::CrashKind::kPermanent);
    (void)cluster.StepWrites(256);
    cluster.ForceReconcile();
    EXPECT_TRUE(cluster.CheckInvariants().ok());
    EXPECT_EQ(cluster.chunks_lost(), 0u);
    EXPECT_EQ(cluster.chunks_under_replicated(), 0u);
    return PlacementTable(cluster);
  };
  // Bit-identical replay with the triage on.
  EXPECT_EQ(run(true), run(true));
  // FIFO heals the same chunk set to the same replication (asserted inside
  // run); the placements themselves legitimately differ between orderings.
  const auto fifo = run(false);
  EXPECT_EQ(fifo.size(), run(true).size());
}

TEST(PlacementDeterminismTest, ProactiveDrainMigratesAndAccountsSeparately) {
  // Fast-wearing devices: the health score decays inside the test horizon
  // and the drain threshold must evacuate flagged devices ahead of death,
  // with the traffic accounted under drain_*, not recovery_*.
  DifsConfig config =
      PlacementConfig(6, /*nodes_per_rack=*/2, MakeDomainSpreadPlacement(2));
  config.drain_health_threshold = 0.6;
  DifsCluster cluster(config, Factory(606, /*nominal_pec=*/12));
  ASSERT_TRUE(cluster.Bootstrap().ok());
  MetricRegistry registry;
  for (int round = 0; round < 400; ++round) {
    (void)cluster.StepWrites(128);
    cluster.ForceReconcile();
    if (cluster.stats().drain_devices_flagged > 0 &&
        cluster.stats().drain_replicas_migrated > 0) {
      break;
    }
  }
  const DifsStats& stats = cluster.stats();
  ASSERT_GT(stats.drain_devices_flagged, 0u) << "threshold never crossed";
  EXPECT_GT(stats.drain_replicas_migrated, 0u);
  EXPECT_GT(stats.drain_opage_writes, 0u);
  EXPECT_EQ(stats.drain_opage_writes,
            stats.drain_replicas_migrated * config.chunk_opages);
  // A completed drain leaves no live replica on the flagged device.
  if (stats.drain_devices_completed > 0) {
    for (ChunkId id = 0; id < cluster.total_chunks(); ++id) {
      for (const ReplicaLocation& r : cluster.chunk(id).replicas) {
        if (r.live && !r.draining) {
          EXPECT_TRUE(!cluster.device(r.device).failed() ||
                      cluster.device(r.device).transiently_dark());
        }
      }
    }
  }
  EXPECT_TRUE(cluster.CheckInvariants().ok());
  EXPECT_EQ(cluster.chunks_lost(), 0u);
  // The exported subtree mirrors the stats ledger, under difs.drain.* —
  // disjoint from difs.recovery_opage_writes.
  cluster.CollectMetrics(registry);
  const Counter* drain_writes =
      registry.FindCounter("difs.drain.opage_writes");
  const Counter* recovery_writes =
      registry.FindCounter("difs.recovery_opage_writes");
  ASSERT_NE(drain_writes, nullptr);
  ASSERT_NE(recovery_writes, nullptr);
  EXPECT_EQ(drain_writes->value(), stats.drain_opage_writes);
  EXPECT_EQ(recovery_writes->value(), stats.recovery_opage_writes);
}

TEST(PlacementDeterminismTest, EcDomainSpreadNeverColocatesCellsInOneRack) {
  EcConfig config;
  config.nodes = 8;
  config.devices_per_node = 1;
  config.data_cells = 2;
  config.parity_cells = 2;
  config.cell_opages = 16;
  config.fill_fraction = 0.4;
  config.seed = 20260807;
  config.nodes_per_rack = 2;
  config.placement = MakeDomainSpreadPlacement(2);
  EcCluster cluster(config, Factory(707));
  ASSERT_TRUE(cluster.Bootstrap().ok());
  (void)cluster.StepWrites(256);
  cluster.ForceReconcile();
  for (StripeId id = 0; id < cluster.total_stripes(); ++id) {
    std::set<uint32_t> racks;
    uint32_t live = 0;
    for (const CellLocation& cell : cluster.stripe(id).cells) {
      if (cell.live) {
        ++live;
        racks.insert(cluster.rack_of_device(cell.device));
      }
    }
    EXPECT_EQ(racks.size(), live) << "stripe " << id;
  }
  EXPECT_EQ(cluster.stats().placement_domain_fallbacks, 0u);
  EXPECT_EQ(cluster.stats().stripes_lost, 0u);
}

TEST(PlacementDeterminismTest, EcUniformPolicyBitIdenticalToNullPolicy) {
  const auto run = [](std::shared_ptr<PlacementPolicy> policy) {
    EcConfig config;
    config.nodes = 6;
    config.devices_per_node = 1;
    config.data_cells = 2;
    config.parity_cells = 2;
    config.cell_opages = 16;
    config.fill_fraction = 0.4;
    config.seed = 20260807;
    config.nodes_per_rack = 2;
    config.placement = std::move(policy);
    EcCluster cluster(config, Factory(808));
    EXPECT_TRUE(cluster.Bootstrap().ok());
    (void)cluster.StepWrites(256);
    std::vector<std::vector<std::pair<uint32_t, bool>>> table;
    for (StripeId id = 0; id < cluster.total_stripes(); ++id) {
      std::vector<std::pair<uint32_t, bool>> cells;
      for (const CellLocation& cell : cluster.stripe(id).cells) {
        cells.emplace_back(cell.device, cell.live);
      }
      table.push_back(std::move(cells));
    }
    return table;
  };
  EXPECT_EQ(run(MakeUniformPlacement()), run(nullptr));
}

// ISSUE 10 satellite: hedged reads when the only alternate replicas sit in
// a dark (powered-off) domain. The hedge scan must skip dark devices and
// fall back to the primary path — never admit a modeled duplicate against a
// powered-off device, and never shed the read.
TEST(PlacementDeterminismTest, HedgeFallsBackWhenAlternateRackDark) {
  DifsConfig config =
      PlacementConfig(6, /*nodes_per_rack=*/2, MakeDomainSpreadPlacement(2));
  config.suspect_grace_ticks = 1000;  // windows stay open for the whole test
  config.sched.queue_depth = 64;
  config.sched.arrival_interval_ns = 1;  // heavy load: hedges would fire
  config.sched.hedge_threshold_ns = 1;
  DifsCluster cluster(config, Factory(909));
  ASSERT_TRUE(cluster.Bootstrap().ok());
  (void)cluster.StepWrites(64);

  // Saturate the queues so every primary admission breaches the 1 ns hedge
  // threshold, then verify hedges do fire with all devices healthy.
  (void)cluster.StepReads(256);
  const uint64_t hedged_healthy = cluster.stats().sched_hedged_reads;
  ASSERT_GT(hedged_healthy, 0u) << "load too light to trigger hedging";

  // Pick a chunk and pull the power on every replica holder except the
  // primary's two alternates' racks — i.e. crash ALL alternates of chunk 0,
  // leaving only one live serving replica.
  const Chunk& chunk = cluster.chunk(0);
  std::vector<uint32_t> holders;
  for (const ReplicaLocation& r : chunk.replicas) {
    if (r.live) {
      holders.push_back(r.device);
    }
  }
  ASSERT_EQ(holders.size(), 3u);
  // Keep the lowest-index holder as the serving primary (ReadChunkAt probes
  // replicas in stored order) and take the whole rack of each alternate
  // dark, the correlated-failure shape a rack power event produces.
  for (size_t i = 1; i < holders.size(); ++i) {
    cluster.device(holders[i]).Crash(SsdDevice::CrashKind::kPowerLoss);
  }

  // The primary replica pick is random, so a read can still land on a dark
  // holder (and fail at the device, as a suspect read must). The hedge
  // property is orthogonal: a hedge admission may never touch a dark
  // device's queue. Since the dark queues receive submissions ONLY via a
  // dark primary pick, any iteration whose dark submission count is flat
  // had a healthy primary — and with both alternates dark, such a read has
  // no hedge candidate at all and must fall back without hedging.
  const auto dark_submitted = [&] {
    uint64_t n = 0;
    for (size_t i = 1; i < holders.size(); ++i) {
      const DeviceQueue* queue = cluster.device_queue(holders[i]);
      n += queue->stats().submitted[static_cast<size_t>(
          OpClass::kForegroundRead)];
    }
    return n;
  };
  uint64_t served = 0;
  uint64_t healthy_primary_reads = 0;
  for (int i = 0; i < 96; ++i) {
    const uint64_t dark_before = dark_submitted();
    const uint64_t hedged_before = cluster.stats().sched_hedged_reads;
    const uint64_t sheds_before = cluster.stats().sched_read_sheds;
    SimDuration cost = 0;
    const Status read = cluster.ReadChunkAt(0, i % 16, &cost);
    served += read.ok() ? 1 : 0;
    if (dark_submitted() == dark_before) {
      // Healthy primary, dark alternates only: the hedge scan must have
      // fallen back to the primary path — no hedge, and no shed introduced
      // by the scan (a shed here would mean the read was refused outright).
      ++healthy_primary_reads;
      EXPECT_EQ(cluster.stats().sched_hedged_reads, hedged_before)
          << "read " << i << " hedged against a dark domain";
      if (read.ok()) {
        EXPECT_EQ(cluster.stats().sched_read_sheds, sheds_before);
      }
    }
  }
  ASSERT_GT(served, 0u);
  ASSERT_GT(healthy_primary_reads, 0u) << "no read ever drew the healthy "
                                          "primary; fixture broken";
  EXPECT_TRUE(cluster.CheckInvariants().ok());
}

}  // namespace
}  // namespace salamander
