// DifsCluster integration tests for the deterministic queueing layer
// (ISSUE 9): queue delay folding into reported costs, bounded-depth sheds
// with ledger reconciliation, hedged reads, brownout degradation, and
// bit-identical replay with every feature (jitter, hedging, SLO) enabled.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "common/units.h"
#include "difs/cluster.h"
#include "difs/ec_cluster.h"
#include "sched/queueing.h"
#include "tests/testing/device_builder.h"

namespace salamander {
namespace {

using testing_util::TestSsdConfig;
using testing_util::TinyGeometry;

constexpr uint32_t kNodes = 4;

DifsCluster MakeSchedCluster(const SchedConfig& sched, uint64_t seed = 4242) {
  DifsConfig config;
  config.nodes = kNodes;
  config.devices_per_node = 1;
  config.replication = 3;
  config.chunk_opages = 16;
  config.fill_fraction = 0.25;
  config.seed = seed;
  config.sched = sched;
  auto factory = [](uint32_t index) {
    return std::make_unique<SsdDevice>(
        SsdKind::kShrinkS,
        TestSsdConfig(SsdKind::kShrinkS, TinyGeometry(),
                      /*nominal_pec=*/1000000, /*seed=*/1000 + index));
  };
  return DifsCluster(config, factory);
}

// Runs the same targeted mixed read/write sequence and returns per-op costs.
std::vector<SimDuration> RunMixed(DifsCluster& cluster, uint64_t ops,
                                  uint64_t* unavailable = nullptr) {
  std::vector<SimDuration> costs;
  const uint64_t chunks = cluster.total_chunks();
  for (uint64_t i = 0; i < ops; ++i) {
    SimDuration cost = 0;
    const Status status =
        (i % 2 == 0)
            ? cluster.WriteChunkAt(i % chunks, i % 16, &cost)
            : cluster.ReadChunkAt((i * 7) % chunks, (i * 3) % 16, &cost);
    if (!status.ok() && unavailable != nullptr &&
        status.code() == StatusCode::kUnavailable) {
      ++*unavailable;
    }
    costs.push_back(cost);
  }
  return costs;
}

SimDuration Percentile(std::vector<SimDuration> costs, double p) {
  std::sort(costs.begin(), costs.end());
  const size_t index =
      static_cast<size_t>(p * static_cast<double>(costs.size() - 1));
  return costs[index];
}

// queue_depth == 0 must disable the layer wholesale: no queues attached, no
// sched stats, and op costs identical to a cluster that never saw a
// SchedConfig — even when the *other* knobs are set.
TEST(ClusterSchedTest, DisabledLayerIsInvisible) {
  SchedConfig noisy;  // everything but queue_depth set
  noisy.arrival_interval_ns = 1000;
  noisy.hedge_threshold_ns = 1;
  noisy.slo_p99_ns = 1;
  noisy.retry_jitter_ns = 500;
  DifsCluster with = MakeSchedCluster(noisy);
  DifsCluster without = MakeSchedCluster(SchedConfig{});
  ASSERT_TRUE(with.Bootstrap().ok());
  ASSERT_TRUE(without.Bootstrap().ok());
  const std::vector<SimDuration> a = RunMixed(with, 200);
  const std::vector<SimDuration> b = RunMixed(without, 200);
  EXPECT_EQ(a, b);
  EXPECT_EQ(with.stats().sched_wait_ns, 0u);
  EXPECT_EQ(with.stats().sched_read_sheds, 0u);
  EXPECT_EQ(with.stats().sched_write_sheds, 0u);
  EXPECT_EQ(with.sched_clock_ns(), 0u);
  for (uint32_t d = 0; d < kNodes; ++d) {
    EXPECT_EQ(with.device_queue(d), nullptr);
    EXPECT_EQ(without.device_queue(d), nullptr);
  }
  EXPECT_EQ(with.brownout(), nullptr);
}

// At ~2x sustainable read load (and far past it for writes) the queue delay
// must fold into reported costs: every op costs at least its unqueued price,
// the total surcharge equals the cluster's sched_wait_ns ledger, and the
// mixed-traffic tail spreads to p99 > 2x p50.
TEST(ClusterSchedTest, OverloadFoldsQueueDelayIntoCosts) {
  SchedConfig sched;
  sched.queue_depth = 4096;  // deep: this test wants waits, not sheds
  sched.arrival_interval_ns = 8 * kMicrosecond;
  DifsCluster queued = MakeSchedCluster(sched);
  DifsCluster unqueued = MakeSchedCluster(SchedConfig{});
  ASSERT_TRUE(queued.Bootstrap().ok());
  ASSERT_TRUE(unqueued.Bootstrap().ok());
  const std::vector<SimDuration> with = RunMixed(queued, 600);
  const std::vector<SimDuration> base = RunMixed(unqueued, 600);
  ASSERT_EQ(with.size(), base.size());
  uint64_t surcharge = 0;
  for (size_t i = 0; i < with.size(); ++i) {
    ASSERT_GE(with[i], base[i]) << "op " << i << " got cheaper under load";
    surcharge += with[i] - base[i];
  }
  EXPECT_GT(surcharge, 0u);
  EXPECT_EQ(surcharge, queued.stats().sched_wait_ns);
  EXPECT_EQ(queued.stats().sched_read_sheds, 0u);
  EXPECT_EQ(queued.stats().sched_write_sheds, 0u);
  EXPECT_GT(Percentile(with, 0.99), 2 * Percentile(with, 0.50));
  uint64_t max_depth = 0;
  for (uint32_t d = 0; d < kNodes; ++d) {
    ASSERT_NE(queued.device_queue(d), nullptr);
    max_depth = std::max(max_depth, queued.device_queue(d)->stats().max_depth);
  }
  EXPECT_GT(max_depth, 1u);
}

// A bounded queue under sustained overload sheds: foreground ops come back
// kUnavailable after their retry budget, whole-op (no replica is touched),
// and the cluster's shed counters reconcile exactly with the per-device
// queue give-up ledger.
TEST(ClusterSchedTest, BoundedDepthShedsAndLedgerReconciles) {
  SchedConfig sched;
  sched.queue_depth = 2;
  sched.arrival_interval_ns = 2 * kMicrosecond;
  sched.shed_retry_budget = 1;
  sched.retry_backoff_base_ns = 1 * kMicrosecond;
  DifsCluster cluster = MakeSchedCluster(sched);
  ASSERT_TRUE(cluster.Bootstrap().ok());
  uint64_t unavailable = 0;
  RunMixed(cluster, 600, &unavailable);
  const DifsStats& stats = cluster.stats();
  EXPECT_GT(unavailable, 0u);
  EXPECT_GT(stats.sched_write_sheds + stats.sched_read_sheds, 0u);
  EXPECT_EQ(unavailable, stats.sched_write_sheds + stats.sched_read_sheds);
  uint64_t giveups = 0;
  uint64_t shed_attempts = 0;
  uint64_t retries = 0;
  for (uint32_t d = 0; d < kNodes; ++d) {
    const DeviceQueueStats& q = cluster.device_queue(d)->stats();
    giveups += q.shed_giveups;
    shed_attempts += q.sheds_total();
    retries += q.shed_retries;
  }
  // No recovery or scrub ran, so every give-up is a shed foreground op.
  EXPECT_EQ(giveups, stats.sched_write_sheds + stats.sched_read_sheds);
  EXPECT_GT(retries, 0u);
  EXPECT_GE(shed_attempts, giveups);
  // Shed writes never touched a replica: metadata stays coherent.
  ASSERT_TRUE(cluster.CheckInvariants().ok());
  EXPECT_EQ(cluster.chunks_lost(), 0u);
}

// When the primary replica's queue estimate breaches the hedge threshold,
// the read fans a modeled duplicate to the least-loaded alternate and
// completes on the faster path.
TEST(ClusterSchedTest, HedgedReadsFireUnderSkewedLoad) {
  SchedConfig sched;
  sched.queue_depth = 4096;
  sched.arrival_interval_ns = 4 * kMicrosecond;
  sched.hedge_threshold_ns = 30 * kMicrosecond;
  DifsCluster cluster = MakeSchedCluster(sched);
  ASSERT_TRUE(cluster.Bootstrap().ok());
  RunMixed(cluster, 800);
  const DifsStats& stats = cluster.stats();
  EXPECT_GT(stats.sched_hedged_reads, 0u);
  EXPECT_LE(stats.sched_hedge_wins, stats.sched_hedged_reads);
  EXPECT_GT(stats.sched_hedge_wins, 0u);
}

// Brownout: a breached foreground p99 SLO defers scrub and background
// recovery (counted), and the cluster exits brownout once the foreground
// tail recovers — after which deferred work proceeds and converges.
TEST(ClusterSchedTest, BrownoutDefersBackgroundWorkAndRecovers) {
  SchedConfig sched;
  sched.queue_depth = 4096;
  sched.arrival_interval_ns = 50 * kMicrosecond;
  sched.slo_p99_ns = 300 * kMicrosecond;  // writes (~700us+) breach, reads don't
  sched.brownout_window_ops = 32;
  DifsCluster cluster = MakeSchedCluster(sched);
  ASSERT_TRUE(cluster.Bootstrap().ok());
  ASSERT_NE(cluster.brownout(), nullptr);
  const uint64_t chunks = cluster.total_chunks();

  // Overload with writes until a window's p99 breaches the SLO.
  for (uint64_t i = 0; i < 128; ++i) {
    ASSERT_TRUE(cluster.WriteChunkAt(i % chunks, i % 16).ok());
  }
  ASSERT_TRUE(cluster.brownout()->active());
  EXPECT_GE(cluster.brownout()->stats().entered, 1u);

  // Scrub yields its whole budget while browned out.
  EXPECT_EQ(cluster.ScrubStep(10), 0u);
  EXPECT_GT(cluster.stats().brownout_scrub_deferrals, 0u);

  // A crash during brownout parks its recovery work instead of competing
  // with foreground traffic (the next write's event wave surfaces the loss).
  cluster.device(0).Crash();
  ASSERT_TRUE(cluster.WriteChunkAt(0, 0).ok());
  EXPECT_GT(cluster.stats().brownout_recovery_deferrals, 0u);

  // Light read-only traffic brings the windowed p99 back under the SLO.
  for (uint64_t i = 0; i < 256 && cluster.brownout()->active(); ++i) {
    (void)cluster.ReadChunkAt((i * 5) % chunks, i % 16);
  }
  EXPECT_FALSE(cluster.brownout()->active());
  EXPECT_GE(cluster.brownout()->stats().exited, 1u);

  // Deferred work now proceeds: scrub consumes budget again and the parked
  // recovery backlog drains to convergence.
  EXPECT_GT(cluster.ScrubStep(10), 0u);
  cluster.ForceReconcile();
  ASSERT_TRUE(cluster.CheckInvariants().ok());
  EXPECT_EQ(cluster.pending_recovery_backlog(), 0u);
  EXPECT_EQ(cluster.chunks_lost(), 0u);
}

// Replaying the same seed with every feature on (bounded depth, retry
// jitter, hedging, SLO brownout, a crash mid-run) is bit-identical: same
// per-op costs, same counters, same per-device queue state.
TEST(SchedDeterminismTest, DifsFullFeatureReplayIsBitIdentical) {
  SchedConfig sched;
  sched.queue_depth = 8;
  sched.arrival_interval_ns = 4 * kMicrosecond;
  sched.retry_jitter_ns = 2 * kMicrosecond;
  sched.hedge_threshold_ns = 30 * kMicrosecond;
  sched.slo_p99_ns = 300 * kMicrosecond;
  sched.brownout_window_ops = 32;
  auto run = [&](std::vector<SimDuration>* costs) {
    DifsCluster cluster = MakeSchedCluster(sched);
    EXPECT_TRUE(cluster.Bootstrap().ok());
    *costs = RunMixed(cluster, 300);
    cluster.device(1).Crash();
    std::vector<SimDuration> tail = RunMixed(cluster, 300);
    costs->insert(costs->end(), tail.begin(), tail.end());
    cluster.ScrubStep(50);
    cluster.ForceReconcile();
    return cluster;
  };
  std::vector<SimDuration> costs_a;
  std::vector<SimDuration> costs_b;
  DifsCluster a = run(&costs_a);
  DifsCluster b = run(&costs_b);
  EXPECT_EQ(costs_a, costs_b);
  EXPECT_EQ(a.sched_clock_ns(), b.sched_clock_ns());
  const DifsStats& sa = a.stats();
  const DifsStats& sb = b.stats();
  EXPECT_EQ(sa.sched_read_sheds, sb.sched_read_sheds);
  EXPECT_EQ(sa.sched_write_sheds, sb.sched_write_sheds);
  EXPECT_EQ(sa.sched_recovery_sheds, sb.sched_recovery_sheds);
  EXPECT_EQ(sa.sched_scrub_sheds, sb.sched_scrub_sheds);
  EXPECT_EQ(sa.sched_wait_ns, sb.sched_wait_ns);
  EXPECT_EQ(sa.sched_hedged_reads, sb.sched_hedged_reads);
  EXPECT_EQ(sa.sched_hedge_wins, sb.sched_hedge_wins);
  EXPECT_EQ(sa.brownout_scrub_deferrals, sb.brownout_scrub_deferrals);
  EXPECT_EQ(sa.brownout_recovery_deferrals, sb.brownout_recovery_deferrals);
  for (uint32_t d = 0; d < kNodes; ++d) {
    const DeviceQueueStats& qa = a.device_queue(d)->stats();
    const DeviceQueueStats& qb = b.device_queue(d)->stats();
    EXPECT_EQ(qa.submitted_total(), qb.submitted_total()) << "device " << d;
    EXPECT_EQ(qa.sheds_total(), qb.sheds_total()) << "device " << d;
    EXPECT_EQ(qa.wait_ns_total, qb.wait_ns_total) << "device " << d;
    EXPECT_EQ(qa.retry_backoff_ns, qb.retry_backoff_ns) << "device " << d;
    EXPECT_EQ(qa.max_depth, qb.max_depth) << "device " << d;
  }
}

// ---- EcCluster integration --------------------------------------------------

EcCluster MakeSchedEcCluster(const SchedConfig& sched) {
  EcConfig config;
  config.nodes = 7;
  config.data_cells = 4;
  config.parity_cells = 2;
  config.cell_opages = 64;
  config.fill_fraction = 0.4;
  config.seed = 515;
  config.sched = sched;
  auto factory = [](uint32_t index) {
    return std::make_unique<SsdDevice>(
        SsdKind::kShrinkS,
        TestSsdConfig(SsdKind::kShrinkS, TinyGeometry(),
                      /*nominal_pec=*/1000000, /*seed=*/7000 + index * 23));
  };
  return EcCluster(config, factory);
}

std::vector<SimDuration> RunMixedEc(EcCluster& cluster, uint64_t ops,
                                    uint64_t* unavailable = nullptr) {
  std::vector<SimDuration> costs;
  const uint64_t stripes = cluster.total_stripes();
  const uint32_t k = cluster.data_cells();
  for (uint64_t i = 0; i < ops; ++i) {
    SimDuration cost = 0;
    const Status status =
        (i % 2 == 0)
            ? cluster.WriteLogicalAt(i % stripes, i % k, i % 16, &cost)
            : cluster.ReadLogicalAt((i * 7) % stripes, (i * 3) % k, i % 16,
                                    &cost);
    if (!status.ok() && unavailable != nullptr &&
        status.code() == StatusCode::kUnavailable) {
      ++*unavailable;
    }
    costs.push_back(cost);
  }
  return costs;
}

// Bounded-depth sheds in the EC data path are whole-op (no cell is written
// when any target queue refuses) and the cluster's shed counters reconcile
// exactly with the per-device give-up ledger.
TEST(ClusterSchedTest, EcBoundedDepthShedsAndLedgerReconciles) {
  SchedConfig sched;
  sched.queue_depth = 2;
  sched.arrival_interval_ns = 2 * kMicrosecond;
  sched.shed_retry_budget = 1;
  sched.retry_backoff_base_ns = 1 * kMicrosecond;
  EcCluster cluster = MakeSchedEcCluster(sched);
  ASSERT_TRUE(cluster.Bootstrap().ok());
  uint64_t unavailable = 0;
  RunMixedEc(cluster, 600, &unavailable);
  const EcStats& stats = cluster.stats();
  EXPECT_GT(unavailable, 0u);
  EXPECT_EQ(unavailable, stats.sched_write_sheds + stats.sched_read_sheds);
  uint64_t giveups = 0;
  for (uint32_t d = 0; d < cluster.device_count(); ++d) {
    giveups += cluster.device_queue(d)->stats().shed_giveups;
  }
  // No rebuild traffic ran, so every give-up is a shed foreground op.
  EXPECT_EQ(giveups, stats.sched_write_sheds + stats.sched_read_sheds);
  EXPECT_EQ(stats.stripes_lost, 0u);
}

// Hammering one data cell piles service time onto its device while the k
// reconstruction sources stay comparatively idle, so the modeled
// reconstruction hedge fires once the primary's estimate crosses the
// threshold.
TEST(ClusterSchedTest, EcHedgedReconstructionFiresOnHotCell) {
  SchedConfig sched;
  sched.queue_depth = 4096;
  sched.arrival_interval_ns = 4 * kMicrosecond;
  sched.hedge_threshold_ns = 30 * kMicrosecond;
  EcCluster cluster = MakeSchedEcCluster(sched);
  ASSERT_TRUE(cluster.Bootstrap().ok());
  for (uint64_t i = 0; i < 400; ++i) {
    ASSERT_TRUE(cluster.ReadLogicalAt(0, 0, i % 16).ok());
  }
  EXPECT_GT(cluster.stats().sched_hedged_reads, 0u);
  EXPECT_LE(cluster.stats().sched_hedge_wins,
            cluster.stats().sched_hedged_reads);
}

// EC full-feature replay (bounded depth, jitter, hedging, SLO brownout, a
// crash mid-run, forced convergence) is bit-identical run to run.
TEST(SchedDeterminismTest, EcFullFeatureReplayIsBitIdentical) {
  SchedConfig sched;
  sched.queue_depth = 8;
  sched.arrival_interval_ns = 4 * kMicrosecond;
  sched.retry_jitter_ns = 2 * kMicrosecond;
  sched.hedge_threshold_ns = 30 * kMicrosecond;
  sched.slo_p99_ns = 300 * kMicrosecond;
  sched.brownout_window_ops = 32;
  auto run = [&](std::vector<SimDuration>* costs) {
    EcCluster cluster = MakeSchedEcCluster(sched);
    EXPECT_TRUE(cluster.Bootstrap().ok());
    *costs = RunMixedEc(cluster, 300);
    cluster.device(1).Crash();
    std::vector<SimDuration> tail = RunMixedEc(cluster, 300);
    costs->insert(costs->end(), tail.begin(), tail.end());
    cluster.ForceReconcile();
    return cluster;
  };
  std::vector<SimDuration> costs_a;
  std::vector<SimDuration> costs_b;
  EcCluster a = run(&costs_a);
  EcCluster b = run(&costs_b);
  EXPECT_EQ(costs_a, costs_b);
  EXPECT_EQ(a.sched_clock_ns(), b.sched_clock_ns());
  const EcStats& sa = a.stats();
  const EcStats& sb = b.stats();
  EXPECT_EQ(sa.sched_read_sheds, sb.sched_read_sheds);
  EXPECT_EQ(sa.sched_write_sheds, sb.sched_write_sheds);
  EXPECT_EQ(sa.sched_rebuild_sheds, sb.sched_rebuild_sheds);
  EXPECT_EQ(sa.sched_wait_ns, sb.sched_wait_ns);
  EXPECT_EQ(sa.sched_hedged_reads, sb.sched_hedged_reads);
  EXPECT_EQ(sa.sched_hedge_wins, sb.sched_hedge_wins);
  EXPECT_EQ(sa.brownout_rebuild_deferrals, sb.brownout_rebuild_deferrals);
  for (uint32_t d = 0; d < a.device_count(); ++d) {
    const DeviceQueueStats& qa = a.device_queue(d)->stats();
    const DeviceQueueStats& qb = b.device_queue(d)->stats();
    EXPECT_EQ(qa.submitted_total(), qb.submitted_total()) << "device " << d;
    EXPECT_EQ(qa.sheds_total(), qb.sheds_total()) << "device " << d;
    EXPECT_EQ(qa.wait_ns_total, qb.wait_ns_total) << "device " << d;
    EXPECT_EQ(qa.max_depth, qb.max_depth) << "device " << d;
  }
}

}  // namespace
}  // namespace salamander
