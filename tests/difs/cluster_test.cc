#include "difs/cluster.h"

#include <gtest/gtest.h>

#include <set>

#include "tests/testing/device_builder.h"

namespace salamander {
namespace {

using testing_util::TestSsdConfig;
using testing_util::TinyGeometry;

std::function<std::unique_ptr<SsdDevice>(uint32_t)> Factory(
    SsdKind kind, uint32_t nominal_pec) {
  return [kind, nominal_pec](uint32_t index) {
    return std::make_unique<SsdDevice>(
        kind, TestSsdConfig(kind, TinyGeometry(), nominal_pec,
                            /*seed=*/1000 + index));
  };
}

DifsConfig TestConfig(uint32_t nodes = 4) {
  DifsConfig config;
  config.nodes = nodes;
  config.devices_per_node = 1;
  config.replication = 3;
  config.chunk_opages = 64;  // == the test mDisk size
  config.fill_fraction = 0.5;
  config.seed = 99;
  return config;
}

TEST(DifsClusterTest, ConstructionRegistersAllMinidisks) {
  DifsCluster cluster(TestConfig(), Factory(SsdKind::kShrinkS, 1000000));
  EXPECT_EQ(cluster.device_count(), 4u);
  // 4 devices x 12 mDisks, 1 slot each.
  EXPECT_EQ(cluster.free_slots(), 48u);
  EXPECT_EQ(cluster.alive_devices(), 4u);
}

TEST(DifsClusterTest, BootstrapPlacesOnDistinctNodes) {
  DifsCluster cluster(TestConfig(), Factory(SsdKind::kShrinkS, 1000000));
  ASSERT_TRUE(cluster.Bootstrap().ok());
  // 48 slots * 0.5 / 3 = 8 chunks.
  EXPECT_EQ(cluster.total_chunks(), 8u);
  EXPECT_EQ(cluster.chunks_fully_replicated(), 8u);
  for (ChunkId c = 0; c < cluster.total_chunks(); ++c) {
    const Chunk& chunk = cluster.chunk(c);
    ASSERT_EQ(chunk.replicas.size(), 3u);
    std::set<uint32_t> nodes;
    for (const ReplicaLocation& replica : chunk.replicas) {
      nodes.insert(cluster.node_of_device(replica.device));
    }
    EXPECT_EQ(nodes.size(), 3u) << "chunk " << c << " not node-disjoint";
  }
}

TEST(DifsClusterTest, BootstrapWritesAllReplicas) {
  DifsCluster cluster(TestConfig(), Factory(SsdKind::kShrinkS, 1000000));
  ASSERT_TRUE(cluster.Bootstrap().ok());
  // 8 chunks x 3 replicas x 64 oPages.
  EXPECT_EQ(cluster.total_bytes_written(), 8u * 3 * 64 * 4096);
}

TEST(DifsClusterTest, StepsRequireBootstrap) {
  DifsCluster cluster(TestConfig(), Factory(SsdKind::kShrinkS, 1000000));
  EXPECT_EQ(cluster.StepWrites(1).code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(cluster.StepReads(1).code(), StatusCode::kFailedPrecondition);
}

TEST(DifsClusterTest, ForegroundWritesFanOutToAllReplicas) {
  DifsCluster cluster(TestConfig(), Factory(SsdKind::kShrinkS, 1000000));
  ASSERT_TRUE(cluster.Bootstrap().ok());
  const uint64_t before = cluster.total_bytes_written();
  ASSERT_TRUE(cluster.StepWrites(100).ok());
  EXPECT_EQ(cluster.stats().foreground_opage_writes, 100u);
  // Each logical write lands on 3 replicas.
  EXPECT_EQ(cluster.total_bytes_written() - before, 100u * 3 * 4096);
}

TEST(DifsClusterTest, ReadsSucceedOnHealthyCluster) {
  DifsCluster cluster(TestConfig(), Factory(SsdKind::kShrinkS, 1000000));
  ASSERT_TRUE(cluster.Bootstrap().ok());
  ASSERT_TRUE(cluster.StepReads(200).ok());
  EXPECT_EQ(cluster.stats().uncorrectable_reads, 0u);
}

// Ages the cluster until at least `target` replica losses occur.
void AgeCluster(DifsCluster& cluster, uint64_t target_losses,
                uint64_t max_steps) {
  uint64_t steps = 0;
  while (cluster.stats().replicas_lost < target_losses &&
         steps < max_steps && cluster.alive_devices() > 0) {
    ASSERT_TRUE(cluster.StepWrites(500).ok());
    steps += 500;
  }
}

TEST(DifsClusterTest, RecoveryRestoresReplicationAfterWearFailures) {
  DifsCluster cluster(TestConfig(/*nodes=*/5),
                      Factory(SsdKind::kShrinkS, /*nominal_pec=*/25));
  ASSERT_TRUE(cluster.Bootstrap().ok());
  AgeCluster(cluster, 3, 400000);
  ASSERT_GT(cluster.stats().replicas_lost, 0u);
  EXPECT_GT(cluster.stats().replicas_recovered, 0u);
  EXPECT_GT(cluster.stats().recovery_opage_writes, 0u);
  // With spare capacity, every surviving chunk should be fully replicated.
  EXPECT_EQ(cluster.chunks_under_replicated(), 0u);
  EXPECT_EQ(cluster.chunks_lost(), 0u);
}

TEST(DifsClusterTest, RecoveryTrafficProportionalToLostReplicas) {
  DifsCluster cluster(TestConfig(/*nodes=*/5),
                      Factory(SsdKind::kShrinkS, /*nominal_pec=*/25));
  ASSERT_TRUE(cluster.Bootstrap().ok());
  AgeCluster(cluster, 3, 400000);
  const auto& stats = cluster.stats();
  // Each successful recovery writes exactly one chunk (64 oPages).
  EXPECT_EQ(stats.recovery_opage_writes % 64, 0u);
  EXPECT_EQ(stats.recovery_opage_writes / 64, stats.replicas_recovered);
}

TEST(DifsClusterTest, BaselineBrickCausesMassRecovery) {
  // Baseline devices host many chunk slots in one volume; a brick loses all
  // of them at once — the Fig. 1(a) whole-device failure.
  DifsConfig config = TestConfig(/*nodes=*/5);
  config.fill_fraction = 0.3;
  DifsCluster cluster(config, Factory(SsdKind::kBaseline, /*nominal_pec=*/20));
  ASSERT_TRUE(cluster.Bootstrap().ok());
  const uint32_t devices_before = cluster.alive_devices();
  uint64_t steps = 0;
  while (cluster.alive_devices() == devices_before && steps < 500000) {
    ASSERT_TRUE(cluster.StepWrites(500).ok());
    steps += 500;
  }
  ASSERT_LT(cluster.alive_devices(), devices_before);
  // All replicas of the dead device were lost in one burst; survivors
  // should have been re-replicated.
  EXPECT_GT(cluster.stats().replicas_lost, 1u);
  EXPECT_EQ(cluster.chunks_lost(), 0u);
  EXPECT_EQ(cluster.chunks_under_replicated(), 0u);
}

TEST(DifsClusterTest, DeterministicForSameSeed) {
  auto run = [] {
    DifsCluster cluster(TestConfig(/*nodes=*/5),
                        Factory(SsdKind::kShrinkS, 25));
    EXPECT_TRUE(cluster.Bootstrap().ok());
    EXPECT_TRUE(cluster.StepWrites(50000).ok());
    return std::make_tuple(cluster.stats().replicas_lost,
                           cluster.stats().replicas_recovered,
                           cluster.stats().recovery_opage_writes,
                           cluster.total_bytes_written());
  };
  EXPECT_EQ(run(), run());
}

TEST(DifsClusterTest, RegenSRegenerationAddsPlacementCapacity) {
  DifsConfig config = TestConfig(/*nodes=*/5);
  DifsCluster cluster(config, Factory(SsdKind::kRegenS, /*nominal_pec=*/20));
  ASSERT_TRUE(cluster.Bootstrap().ok());
  uint64_t regenerations = 0;
  uint64_t steps = 0;
  while (regenerations == 0 && steps < 600000 &&
         cluster.alive_devices() > 0) {
    ASSERT_TRUE(cluster.StepWrites(500).ok());
    steps += 500;
    regenerations = 0;
    for (uint32_t d = 0; d < cluster.device_count(); ++d) {
      regenerations += cluster.device(d).manager().regenerated_total();
    }
  }
  EXPECT_GT(regenerations, 0u);
}

// ---------------------------------------------------------------------------
// Tick scheduling — the discrete-event hooks behind MaybeRunMaintenance
// ---------------------------------------------------------------------------

TEST(DifsClusterTest, MaintenanceDormantWithoutInjectors) {
  DifsCluster cluster(TestConfig(), Factory(SsdKind::kShrinkS, 1000000));
  ASSERT_TRUE(cluster.Bootstrap().ok());
  EXPECT_TRUE(cluster.MaintenanceDormant());
  EXPECT_EQ(cluster.OpsUntilMaintenanceTick(), UINT64_MAX);
  // Dormant means dormant: foreground traffic never wakes maintenance.
  ASSERT_TRUE(cluster.StepWrites(600).ok());
  EXPECT_EQ(cluster.stats().maintenance_ticks, 0u);
}

TEST(DifsClusterTest, ExplicitIntervalSchedulesTicks) {
  DifsConfig config = TestConfig();
  config.resync_interval_ops = 8;
  DifsCluster cluster(config, Factory(SsdKind::kShrinkS, 1000000));
  ASSERT_TRUE(cluster.Bootstrap().ok());
  EXPECT_FALSE(cluster.MaintenanceDormant());
  // A fresh cluster is a full interval away from its first tick; the
  // countdown shrinks as foreground ops land and the tick fires on schedule.
  EXPECT_EQ(cluster.OpsUntilMaintenanceTick(), 8u);
  ASSERT_TRUE(cluster.StepWrites(3).ok());
  EXPECT_EQ(cluster.OpsUntilMaintenanceTick(), 5u);
  const uint64_t before = cluster.stats().maintenance_ticks;
  ASSERT_TRUE(cluster.StepWrites(5).ok());
  EXPECT_EQ(cluster.stats().maintenance_ticks, before + 1);
  EXPECT_EQ(cluster.OpsUntilMaintenanceTick(), 8u);
}

TEST(DifsClusterTest, ClusterInjectorWakesAutoMaintenance) {
  DifsConfig config = TestConfig();
  config.faults = std::make_shared<FaultInjector>(FaultConfig{}, 7);
  DifsCluster cluster(config, Factory(SsdKind::kShrinkS, 1000000));
  ASSERT_TRUE(cluster.Bootstrap().ok());
  EXPECT_FALSE(cluster.MaintenanceDormant());
  // Auto interval is 256 ops.
  EXPECT_LE(cluster.OpsUntilMaintenanceTick(), 256u);
}

}  // namespace
}  // namespace salamander
