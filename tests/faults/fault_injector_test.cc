#include "faults/fault_injector.h"

#include <gtest/gtest.h>

#include <vector>

namespace salamander {
namespace {

FaultConfig AllSitesConfig(uint64_t seed = 42) {
  FaultConfig config;
  config.program_fail = 0.1;
  config.erase_fail = 0.1;
  config.read_corrupt = 0.1;
  config.transient_unavailable = 0.1;
  config.event_drop = 0.1;
  config.event_duplicate = 0.1;
  config.event_delay = 0.1;
  config.crash_during_drain = 0.1;
  config.node_outage = 0.1;
  config.ack_drain_lost = 0.1;
  config.seed = seed;
  return config;
}

TEST(FaultInjectorTest, DefaultConstructedIsDisabled) {
  FaultInjector injector;
  EXPECT_FALSE(injector.enabled());
  for (int i = 0; i < 1000; ++i) {
    EXPECT_FALSE(injector.ProgramFails());
    EXPECT_FALSE(injector.EraseFails());
    EXPECT_FALSE(injector.CorruptsRead());
    EXPECT_FALSE(injector.TransientlyUnavailable());
    EXPECT_FALSE(injector.DropsEvent());
    EXPECT_FALSE(injector.DuplicatesEvent());
    EXPECT_EQ(injector.EventDelayWaves(), 0u);
    EXPECT_FALSE(injector.CrashesDuringDrain());
    EXPECT_FALSE(injector.StartsNodeOutage());
    EXPECT_FALSE(injector.LosesAckDrain());
  }
  EXPECT_EQ(injector.stats().total(), 0u);
}

TEST(FaultInjectorTest, ZeroProbabilitySiteNeverFires) {
  FaultConfig config;  // all probabilities zero
  FaultInjector injector(config, /*stream_id=*/0);
  EXPECT_TRUE(injector.enabled());
  for (int i = 0; i < 1000; ++i) {
    EXPECT_FALSE(injector.ProgramFails());
  }
  EXPECT_EQ(injector.stats().count(FaultSite::kProgramFail), 0u);
}

TEST(FaultInjectorTest, SameSeedSameStreamIdIsDeterministic) {
  FaultInjector a(AllSitesConfig(), /*stream_id=*/3);
  FaultInjector b(AllSitesConfig(), /*stream_id=*/3);
  for (int i = 0; i < 2000; ++i) {
    EXPECT_EQ(a.ProgramFails(), b.ProgramFails());
    EXPECT_EQ(a.DropsEvent(), b.DropsEvent());
    EXPECT_EQ(a.EventDelayWaves(), b.EventDelayWaves());
    EXPECT_EQ(a.LosesAckDrain(), b.LosesAckDrain());
  }
  EXPECT_EQ(a.stats().total(), b.stats().total());
}

TEST(FaultInjectorTest, DistinctStreamIdsDiverge) {
  FaultInjector a(AllSitesConfig(), /*stream_id=*/0);
  FaultInjector b(AllSitesConfig(), /*stream_id=*/1);
  int differences = 0;
  for (int i = 0; i < 2000; ++i) {
    differences += a.ProgramFails() != b.ProgramFails() ? 1 : 0;
  }
  EXPECT_GT(differences, 0);
}

// The determinism contract that keeps fault schedules stable as probes are
// added: each site draws from its own stream, so querying (or not querying)
// one site never changes another site's schedule.
TEST(FaultInjectorTest, SitesAreScheduleIndependent) {
  FaultInjector a(AllSitesConfig(), /*stream_id=*/5);
  FaultInjector b(AllSitesConfig(), /*stream_id=*/5);
  std::vector<bool> a_drops;
  for (int i = 0; i < 500; ++i) {
    // `a` interleaves heavy traffic on unrelated sites; `b` does not.
    (void)a.ProgramFails();
    (void)a.EraseFails();
    (void)a.TransientlyUnavailable();
    a_drops.push_back(a.DropsEvent());
  }
  for (int i = 0; i < 500; ++i) {
    EXPECT_EQ(b.DropsEvent(), a_drops[i]) << "at draw " << i;
  }
}

TEST(FaultInjectorTest, StatsCountEachInjection) {
  FaultConfig config;
  config.program_fail = 1.0;
  FaultInjector injector(config, /*stream_id=*/0);
  for (int i = 0; i < 7; ++i) {
    EXPECT_TRUE(injector.ProgramFails());
  }
  EXPECT_EQ(injector.stats().count(FaultSite::kProgramFail), 7u);
  EXPECT_EQ(injector.stats().total(), 7u);
}

TEST(FaultInjectorTest, DelayWavesWithinConfiguredBound) {
  FaultConfig config;
  config.event_delay = 1.0;
  config.event_delay_waves_max = 3;
  FaultInjector injector(config, /*stream_id=*/0);
  for (int i = 0; i < 200; ++i) {
    const uint32_t waves = injector.EventDelayWaves();
    EXPECT_GE(waves, 1u);
    EXPECT_LE(waves, 3u);
  }
}

TEST(FaultInjectorTest, OutageNodeWithinRange) {
  FaultConfig config;
  config.node_outage = 1.0;
  config.node_outage_ticks_max = 4;
  FaultInjector injector(config, /*stream_id=*/0);
  for (int i = 0; i < 200; ++i) {
    EXPECT_TRUE(injector.StartsNodeOutage());
    EXPECT_LT(injector.OutageNode(6), 6u);
    const uint32_t ticks = injector.OutageTicks();
    EXPECT_GE(ticks, 1u);
    EXPECT_LE(ticks, 4u);
  }
}

TEST(FaultInjectorTest, SiteNamesAreStable) {
  EXPECT_EQ(FaultSiteName(FaultSite::kProgramFail), "program_fail");
  EXPECT_EQ(FaultSiteName(FaultSite::kAckDrainLost), "ack_drain_lost");
}

}  // namespace
}  // namespace salamander
