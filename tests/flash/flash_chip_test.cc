#include "flash/flash_chip.h"

#include <gtest/gtest.h>

#include "ecc/tiredness.h"
#include "tests/testing/device_builder.h"

namespace salamander {
namespace {

using testing_util::TinyGeometry;

FlashChip MakeChip(double page_sigma = 0.35, uint32_t nominal_pec = 3000) {
  FPageEccGeometry ecc;
  return FlashChip(TinyGeometry(),
                   testing_util::FastWear(ecc, nominal_pec, page_sigma),
                   FlashLatencyConfig{}, /*seed=*/11);
}

EccParams L0Ecc() {
  const TirednessLevelEcc l0 = ComputeTirednessLevel(FPageEccGeometry{}, 0);
  return EccParams{
      .stripe_codeword_bits = l0.stripe_codeword_bits,
      .correctable_bits_per_stripe = l0.correctable_bits_per_stripe,
      .stripes = 4,
  };
}

TEST(FlashChipTest, GeometryCounts) {
  FlashChip chip = MakeChip();
  EXPECT_EQ(chip.geometry().total_blocks(), 16u);
  EXPECT_EQ(chip.geometry().total_fpages(), 256u);
  EXPECT_EQ(chip.geometry().total_opages(), 1024u);
}

TEST(FlashChipTest, ProgramRequiresErasedPage) {
  FlashChip chip = MakeChip();
  ASSERT_TRUE(chip.ProgramFPage(0).ok());
  // Double program without erase violates NAND rules.
  auto second = chip.ProgramFPage(0);
  EXPECT_FALSE(second.ok());
  EXPECT_EQ(second.status().code(), StatusCode::kFailedPrecondition);
}

TEST(FlashChipTest, ProgramOrderAscendingWithinBlock) {
  FlashChip chip = MakeChip();
  ASSERT_TRUE(chip.ProgramFPage(0).ok());
  ASSERT_TRUE(chip.ProgramFPage(2).ok());  // skip allowed
  auto backwards = chip.ProgramFPage(1);   // going back is not
  EXPECT_FALSE(backwards.ok());
  EXPECT_EQ(backwards.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_TRUE(chip.ProgramFPage(3).ok());
}

TEST(FlashChipTest, EraseResetsProgramState) {
  FlashChip chip = MakeChip();
  ASSERT_TRUE(chip.ProgramFPage(0).ok());
  ASSERT_TRUE(chip.EraseBlock(0).ok());
  EXPECT_FALSE(chip.IsProgrammed(0));
  EXPECT_TRUE(chip.ProgramFPage(0).ok());
}

TEST(FlashChipTest, EraseIncrementsPec) {
  FlashChip chip = MakeChip();
  EXPECT_EQ(chip.BlockPec(3), 0u);
  ASSERT_TRUE(chip.EraseBlock(3).ok());
  ASSERT_TRUE(chip.EraseBlock(3).ok());
  EXPECT_EQ(chip.BlockPec(3), 2u);
  EXPECT_EQ(chip.BlockPec(4), 0u);
  EXPECT_EQ(chip.total_erases(), 2u);
}

TEST(FlashChipTest, OutOfRangeOperationsRejected) {
  FlashChip chip = MakeChip();
  EXPECT_EQ(chip.EraseBlock(999).status().code(), StatusCode::kOutOfRange);
  EXPECT_EQ(chip.ProgramFPage(99999).status().code(),
            StatusCode::kOutOfRange);
  EXPECT_EQ(chip.ReadFPage(99999, L0Ecc(), 4096).status().code(),
            StatusCode::kOutOfRange);
}

TEST(FlashChipTest, ReadRequiresProgrammedPage) {
  FlashChip chip = MakeChip();
  auto result = chip.ReadFPage(0, L0Ecc(), 4096);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
}

TEST(FlashChipTest, FreshPageReadsCleanly) {
  FlashChip chip = MakeChip();
  ASSERT_TRUE(chip.ProgramFPage(0).ok());
  for (int i = 0; i < 50; ++i) {
    auto result = chip.ReadFPage(0, L0Ecc(), 4096);
    ASSERT_TRUE(result.ok());
    EXPECT_TRUE(result->correctable);
    EXPECT_EQ(result->retries, 0u);
  }
}

TEST(FlashChipTest, ReadLatencyIncludesTransfer) {
  FlashChip chip = MakeChip();
  ASSERT_TRUE(chip.ProgramFPage(0).ok());
  auto result = chip.ReadFPage(0, L0Ecc(), 4096);
  ASSERT_TRUE(result.ok());
  const FlashLatencyConfig latency;
  EXPECT_EQ(result->latency, latency.read_fpage + latency.TransferTime(4096));
}

TEST(FlashChipTest, RberGrowsWithErase) {
  FlashChip chip = MakeChip(/*page_sigma=*/0.0);
  const double fresh = chip.PageRber(0);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_TRUE(chip.EraseBlock(0).ok());
  }
  EXPECT_GT(chip.PageRber(0), fresh);
  // Block 1 untouched.
  EXPECT_DOUBLE_EQ(chip.PageRber(16), fresh);
}

TEST(FlashChipTest, WornPageEventuallyUncorrectable) {
  // Wear far past nominal: reads should need retries and eventually fail.
  FlashChip chip = MakeChip(/*page_sigma=*/0.0, /*nominal_pec=*/50);
  for (int i = 0; i < 300; ++i) {
    ASSERT_TRUE(chip.EraseBlock(0).ok());
  }
  ASSERT_TRUE(chip.ProgramFPage(0).ok());
  int uncorrectable = 0;
  int with_retries = 0;
  for (int i = 0; i < 50; ++i) {
    auto result = chip.ReadFPage(0, L0Ecc(), 4096);
    ASSERT_TRUE(result.ok());
    if (!result->correctable) {
      ++uncorrectable;
    } else if (result->retries > 0) {
      ++with_retries;
    }
  }
  // At 6x nominal PEC with a 2.7 power law the RBER is ~125x tolerable;
  // essentially every read must fail even after retries.
  EXPECT_GT(uncorrectable, 45);
}

TEST(FlashChipTest, RetriesReduceEffectiveRber) {
  // Wear to ~1.4x nominal: the RBER is ~2.5x the L0 tolerance (power law),
  // putting the mean stripe error count right at/above t, so raw reads
  // frequently exceed t — but one voltage-adjusted retry (RBER x0.6) pulls
  // the mean safely under t again.
  FlashChip chip = MakeChip(/*page_sigma=*/0.0, /*nominal_pec=*/100);
  for (int i = 0; i < 140; ++i) {
    ASSERT_TRUE(chip.EraseBlock(0).ok());
  }
  ASSERT_TRUE(chip.ProgramFPage(0).ok());
  int correctable = 0;
  int retried = 0;
  for (int i = 0; i < 200; ++i) {
    auto result = chip.ReadFPage(0, L0Ecc(), 4096);
    ASSERT_TRUE(result.ok());
    correctable += result->correctable ? 1 : 0;
    retried += result->retries > 0 ? 1 : 0;
  }
  EXPECT_GT(correctable, 180);  // retries rescue nearly everything
  EXPECT_GT(retried, 0);        // and many reads did need them
}

TEST(FlashChipTest, ReadLatencyGrowsWithRetries) {
  FlashChip chip = MakeChip(/*page_sigma=*/0.0, /*nominal_pec=*/100);
  for (int i = 0; i < 115; ++i) {
    ASSERT_TRUE(chip.EraseBlock(0).ok());
  }
  ASSERT_TRUE(chip.ProgramFPage(0).ok());
  const FlashLatencyConfig latency;
  for (int i = 0; i < 100; ++i) {
    auto result = chip.ReadFPage(0, L0Ecc(), 4096);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result->latency, latency.read_fpage * (1 + result->retries) +
                                   latency.TransferTime(4096));
  }
}

TEST(FlashChipTest, PageFactorsVaryAcrossPages) {
  FlashChip chip = MakeChip(/*page_sigma=*/0.35);
  double min_factor = 1e9;
  double max_factor = 0;
  for (FPageIndex p = 0; p < chip.geometry().total_fpages(); ++p) {
    min_factor = std::min(min_factor, chip.PageFactor(p));
    max_factor = std::max(max_factor, chip.PageFactor(p));
  }
  // 256 lognormal(0, 0.35) draws should spread by well over 2x.
  EXPECT_GT(max_factor / min_factor, 2.0);
}

TEST(FlashChipTest, PecUntilRberHonorsPageFactor) {
  FlashChip chip = MakeChip(/*page_sigma=*/0.35);
  // Weaker (higher-factor) pages tire at lower PEC.
  FPageIndex weak = 0;
  FPageIndex strong = 0;
  for (FPageIndex p = 1; p < chip.geometry().total_fpages(); ++p) {
    if (chip.PageFactor(p) > chip.PageFactor(weak)) {
      weak = p;
    }
    if (chip.PageFactor(p) < chip.PageFactor(strong)) {
      strong = p;
    }
  }
  const double rber = 3e-3;
  EXPECT_LT(chip.PecUntilRber(weak, rber), chip.PecUntilRber(strong, rber));
}

TEST(FlashChipTest, DeterministicAcrossInstances) {
  FlashChip a = MakeChip();
  FlashChip b = MakeChip();
  ASSERT_TRUE(a.ProgramFPage(0).ok());
  ASSERT_TRUE(b.ProgramFPage(0).ok());
  for (int i = 0; i < 20; ++i) {
    auto ra = a.ReadFPage(0, L0Ecc(), 4096);
    auto rb = b.ReadFPage(0, L0Ecc(), 4096);
    ASSERT_TRUE(ra.ok());
    ASSERT_TRUE(rb.ok());
    EXPECT_EQ(ra->worst_stripe_errors, rb->worst_stripe_errors);
    EXPECT_EQ(ra->latency, rb->latency);
  }
}

}  // namespace
}  // namespace salamander
