// Injected flash faults: how program/erase failures and silent read
// corruption surface at the chip, and how the FTL absorbs them (retired
// pages/blocks, kDataLoss host reads) while its accounting stays consistent.
#include <gtest/gtest.h>

#include "ecc/tiredness.h"
#include "flash/flash_chip.h"
#include "ftl/ftl.h"
#include "tests/testing/device_builder.h"

namespace salamander {
namespace {

using testing_util::TestFtlConfig;
using testing_util::TinyGeometry;

FlashChip MakeChip() {
  FPageEccGeometry ecc;
  return FlashChip(TinyGeometry(), testing_util::FastWear(ecc, 3000),
                   FlashLatencyConfig{}, /*seed=*/11);
}

EccParams L0Ecc() {
  const TirednessLevelEcc l0 = ComputeTirednessLevel(FPageEccGeometry{}, 0);
  return EccParams{
      .stripe_codeword_bits = l0.stripe_codeword_bits,
      .correctable_bits_per_stripe = l0.correctable_bits_per_stripe,
      .stripes = 4,
  };
}

TEST(FlashFaultTest, InjectedProgramFailureIsDataLossAndConsumesPage) {
  FlashChip chip = MakeChip();
  FaultConfig faults;
  faults.program_fail = 1.0;
  FaultInjector injector(faults, /*stream_id=*/0);
  chip.set_fault_injector(&injector);
  const auto result = chip.ProgramFPage(0);
  EXPECT_EQ(result.status().code(), StatusCode::kDataLoss);
  // The page is consumed: the in-block program cursor moved past it, so the
  // FTL can re-place the batch on the next page without violating order.
  EXPECT_TRUE(chip.IsProgrammed(0));
  EXPECT_TRUE(chip.ProgramFPage(1).status().code() == StatusCode::kDataLoss);
}

TEST(FlashFaultTest, InjectedEraseFailureIsDataLossAndKeepsPec) {
  FlashChip chip = MakeChip();
  FaultConfig faults;
  faults.erase_fail = 1.0;
  FaultInjector injector(faults, /*stream_id=*/0);
  chip.set_fault_injector(&injector);
  const uint32_t pec_before = chip.BlockPec(0);
  EXPECT_EQ(chip.EraseBlock(0).status().code(), StatusCode::kDataLoss);
  EXPECT_EQ(chip.BlockPec(0), pec_before);  // the erase did not happen
}

TEST(FlashFaultTest, InjectedCorruptionIsSilentAtTheChip) {
  FlashChip chip = MakeChip();
  ASSERT_TRUE(chip.ProgramFPage(0).ok());
  FaultConfig faults;
  faults.read_corrupt = 1.0;
  FaultInjector injector(faults, /*stream_id=*/0);
  chip.set_fault_injector(&injector);
  // kReadCorrupt models an ECC *miscorrection*: the read reports success
  // (correctable, no retries burned) but the delivered payload is wrong.
  // Only an end-to-end checksum above the device can catch it.
  const auto outcome = chip.ReadFPage(0, L0Ecc(), 4096);
  ASSERT_TRUE(outcome.ok());
  EXPECT_TRUE(outcome.value().correctable);
  EXPECT_TRUE(outcome.value().silent_corrupt);
  EXPECT_EQ(injector.stats().count(FaultSite::kReadCorrupt), 1u);
}

// Under a steady drizzle of program/erase failures the FTL keeps operating —
// failed pages retire, failed blocks leave service, writes may start failing
// only once the injected damage has eaten the capacity — and its internal
// accounting never drifts.
TEST(FlashFaultTest, FtlAbsorbsProgramAndEraseFailures) {
  FtlConfig config = TestFtlConfig(TinyGeometry(), /*nominal_pec=*/1000000);
  Ftl ftl(config);
  FaultConfig faults;
  faults.program_fail = 0.05;
  faults.erase_fail = 0.05;
  faults.seed = 21;
  FaultInjector injector(faults, /*stream_id=*/0);
  ftl.SetFaultInjector(&injector);

  const uint64_t logical = 500;
  ftl.ExtendLogicalSpace(logical);
  uint64_t succeeded = 0;
  for (uint64_t i = 0; i < 20000; ++i) {
    succeeded += ftl.Write(i % logical).ok() ? 1 : 0;  // may fail near death
    if (i % 1000 == 999) {
      ftl.TakeTransitions();
      ASSERT_EQ(ftl.CheckInvariants(), OkStatus())
          << "write " << i << ": " << ftl.CheckInvariants().ToString();
    }
  }
  EXPECT_GT(succeeded, 1000u);
  EXPECT_GT(ftl.stats().program_failures, 0u);
  EXPECT_GT(ftl.stats().erase_failures, 0u);
}

// Injected silent corruption flows through the FTL as a *successful* read
// flagged payload_corrupt, counted once per corrupt fPage read at the
// observation point — the invariant the cluster's exact detected==injected
// accounting is built on.
TEST(FlashFaultTest, FtlReadCorruptionIsSilentAndCountedExactly) {
  FtlConfig config = TestFtlConfig(TinyGeometry(), /*nominal_pec=*/1000000);
  Ftl ftl(config);
  FaultConfig faults;
  faults.read_corrupt = 1.0;
  FaultInjector injector(faults, /*stream_id=*/0);
  ftl.SetFaultInjector(&injector);
  ftl.ExtendLogicalSpace(8);
  ASSERT_TRUE(ftl.Write(0).ok());
  ASSERT_TRUE(ftl.Flush().ok());  // push it out of the NV buffer
  const auto read = ftl.Read(0);
  ASSERT_TRUE(read.ok());
  EXPECT_TRUE(read.value().payload_corrupt);
  EXPECT_EQ(ftl.stats().uncorrectable_reads, 0u);
  EXPECT_EQ(ftl.stats().silent_corrupt_fpage_reads,
            injector.stats().count(FaultSite::kReadCorrupt));
  // A second read corrupts (and counts) again: the counter tracks corrupt
  // *reads*, not corrupt pages.
  ASSERT_TRUE(ftl.Read(0).ok());
  EXPECT_EQ(ftl.stats().silent_corrupt_fpage_reads,
            injector.stats().count(FaultSite::kReadCorrupt));
  EXPECT_GE(ftl.stats().silent_corrupt_fpage_reads, 2u);
}

}  // namespace
}  // namespace salamander
