// Read-disturb extension tests (§2, [26]): reads of a block accumulate
// disturb charge that raises RBER until the next erase. Off by default
// (the paper's analysis is aging-only).
#include <gtest/gtest.h>

#include "ecc/tiredness.h"
#include "flash/flash_chip.h"
#include "tests/testing/device_builder.h"

namespace salamander {
namespace {

using testing_util::TinyGeometry;

EccParams L0Ecc() {
  const TirednessLevelEcc l0 = ComputeTirednessLevel(FPageEccGeometry{}, 0);
  return EccParams{
      .stripe_codeword_bits = l0.stripe_codeword_bits,
      .correctable_bits_per_stripe = l0.correctable_bits_per_stripe,
      .stripes = 4,
  };
}

FlashChip MakeChip(double disturb_per_read) {
  FPageEccGeometry ecc;
  WearModelConfig wear = testing_util::FastWear(ecc, 3000, /*sigma=*/0.0);
  wear.read_disturb_per_read = disturb_per_read;
  return FlashChip(TinyGeometry(), wear, FlashLatencyConfig{}, /*seed=*/5);
}

TEST(ReadDisturbTest, DisabledByDefaultRberConstantUnderReads) {
  FlashChip chip = MakeChip(0.0);
  ASSERT_TRUE(chip.ProgramFPage(0).ok());
  const double before = chip.PageRber(0);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_TRUE(chip.ReadFPage(0, L0Ecc(), 4096).ok());
  }
  EXPECT_DOUBLE_EQ(chip.PageRber(0), before);
}

TEST(ReadDisturbTest, ReadsRaiseRberOfWholeBlock) {
  FlashChip chip = MakeChip(1e-8);
  ASSERT_TRUE(chip.ProgramFPage(0).ok());
  ASSERT_TRUE(chip.ProgramFPage(1).ok());
  const double before_self = chip.PageRber(0);
  const double before_neighbor = chip.PageRber(1);
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE(chip.ReadFPage(0, L0Ecc(), 4096).ok());
  }
  // Disturb hits the victim page's neighbours too (same block).
  EXPECT_NEAR(chip.PageRber(0) - before_self, 500 * 1e-8, 1e-12);
  EXPECT_NEAR(chip.PageRber(1) - before_neighbor, 500 * 1e-8, 1e-12);
  // Other blocks are unaffected.
  const FPageIndex other_block_page = TinyGeometry().fpages_per_block;
  EXPECT_DOUBLE_EQ(chip.PageRber(other_block_page), before_self);
}

TEST(ReadDisturbTest, EraseResetsDisturbCharge) {
  FlashChip chip = MakeChip(1e-8);
  ASSERT_TRUE(chip.ProgramFPage(0).ok());
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(chip.ReadFPage(0, L0Ecc(), 4096).ok());
  }
  EXPECT_EQ(chip.BlockReadsSinceErase(0), 200u);
  ASSERT_TRUE(chip.EraseBlock(0).ok());
  EXPECT_EQ(chip.BlockReadsSinceErase(0), 0u);
  // RBER back to the aging-only value (plus one PEC of wear).
  FlashChip reference = MakeChip(0.0);
  ASSERT_TRUE(reference.EraseBlock(0).ok());
  EXPECT_DOUBLE_EQ(chip.PageRber(0), reference.PageRber(0));
}

TEST(ReadDisturbTest, HeavyReadingDegradesReadQuality) {
  // A pathological disturb rate: after enough reads the default ECC starts
  // needing retries and eventually fails — the hot-read-block hazard real
  // firmware counters with block refresh.
  FlashChip chip = MakeChip(5e-6);
  ASSERT_TRUE(chip.ProgramFPage(0).ok());
  uint64_t stressed = 0;
  for (int i = 0; i < 3000; ++i) {
    auto result = chip.ReadFPage(0, L0Ecc(), 4096);
    ASSERT_TRUE(result.ok());
    if (result->retries > 0 || !result->correctable) {
      ++stressed;
    }
  }
  EXPECT_GT(stressed, 0u);
}

TEST(ReadDisturbTest, CounterTracksEveryRead) {
  FlashChip chip = MakeChip(1e-9);
  ASSERT_TRUE(chip.ProgramFPage(0).ok());
  ASSERT_TRUE(chip.ProgramFPage(1).ok());
  for (int i = 0; i < 7; ++i) {
    ASSERT_TRUE(chip.ReadFPage(0, L0Ecc(), 4096).ok());
  }
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(chip.ReadFPage(1, L0Ecc(), 4096).ok());
  }
  EXPECT_EQ(chip.BlockReadsSinceErase(0), 12u);
}

}  // namespace
}  // namespace salamander
