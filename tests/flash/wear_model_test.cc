#include "flash/wear_model.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/rng.h"

namespace salamander {
namespace {

TEST(WearModelTest, FreshPageSitsAtFloor) {
  WearModelConfig config;
  config.rber_floor = 1e-7;
  WearModel model(config);
  EXPECT_DOUBLE_EQ(model.Rber(0), 1e-7);
  EXPECT_DOUBLE_EQ(model.Rber(-5.0), 1e-7);
}

TEST(WearModelTest, RberMonotoneInPec) {
  WearModel model(WearModelConfig{});
  double prev = 0.0;
  for (double pec = 0; pec <= 5000; pec += 100) {
    const double rber = model.Rber(pec);
    EXPECT_GE(rber, prev) << "pec=" << pec;
    prev = rber;
  }
}

TEST(WearModelTest, WeakPagesWearFaster) {
  WearModel model(WearModelConfig{});
  EXPECT_GT(model.Rber(1000, /*page_factor=*/2.0),
            model.Rber(1000, /*page_factor=*/1.0));
  EXPECT_LT(model.Rber(1000, /*page_factor=*/0.5),
            model.Rber(1000, /*page_factor=*/1.0));
}

TEST(WearModelTest, PecAtRberInvertsRber) {
  WearModel model(WearModelConfig{});
  for (double pec : {100.0, 1000.0, 3000.0, 10000.0}) {
    const double rber = model.Rber(pec);
    EXPECT_NEAR(model.PecAtRber(rber), pec, pec * 1e-9);
  }
}

TEST(WearModelTest, PecAtRberWithPageFactor) {
  WearModel model(WearModelConfig{});
  const double rber = model.Rber(2000, 1.5);
  EXPECT_NEAR(model.PecAtRber(rber, 1.5), 2000, 1e-6);
  // A weaker page reaches the same RBER sooner.
  EXPECT_LT(model.PecAtRber(rber, 3.0), 2000);
}

TEST(WearModelTest, PecAtRberBelowFloorIsZero) {
  WearModelConfig config;
  config.rber_floor = 1e-5;
  WearModel model(config);
  EXPECT_EQ(model.PecAtRber(1e-6), 0.0);
}

TEST(WearModelTest, CalibrateHitsNominalExactly) {
  const double target_rber = 3e-3;
  const uint32_t nominal = 3000;
  WearModel model(WearModel::Calibrate(target_rber, nominal));
  EXPECT_NEAR(model.Rber(nominal), target_rber, target_rber * 1e-12);
  EXPECT_NEAR(model.PecAtRber(target_rber), nominal, 1e-6);
}

// The Fig. 2 mechanism: with exponent b, tolerating k x higher RBER extends
// PEC by k^(1/b). For b = 2.7 and the L0->L1 tolerable-RBER ratio of ~3,
// that is the paper's ~1.5x.
TEST(WearModelTest, PecGainFollowsPowerLaw) {
  WearModel model(WearModel::Calibrate(3e-3, 3000, /*exponent=*/2.7));
  const double pec_l0 = model.PecAtRber(3e-3);
  const double pec_l1 = model.PecAtRber(3.0 * 3e-3);
  // The small rber_floor offset perturbs the pure power law slightly.
  EXPECT_NEAR(pec_l1 / pec_l0, std::pow(3.0, 1.0 / 2.7), 1e-4);
  EXPECT_NEAR(pec_l1 / pec_l0, 1.5, 0.05);
}

TEST(WearModelTest, PageFactorLognormalMedianOne) {
  WearModelConfig config;
  config.page_factor_sigma = 0.35;
  WearModel model(config);
  Rng rng(1);
  std::vector<double> samples;
  for (int i = 0; i < 20001; ++i) {
    const double f = model.SamplePageFactor(rng);
    EXPECT_GT(f, 0.0);
    samples.push_back(f);
  }
  std::nth_element(samples.begin(), samples.begin() + samples.size() / 2,
                   samples.end());
  EXPECT_NEAR(samples[samples.size() / 2], 1.0, 0.03);
}

TEST(WearModelTest, ZeroSigmaDisablesVariance) {
  WearModelConfig config;
  config.page_factor_sigma = 0.0;
  WearModel model(config);
  Rng rng(2);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(model.SamplePageFactor(rng), 1.0);
  }
}

}  // namespace
}  // namespace salamander
