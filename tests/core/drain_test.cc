// Grace-period (draining) decommissioning tests — §4.3 future work.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/minidisk_manager.h"
#include "tests/testing/device_builder.h"

namespace salamander {
namespace {

using testing_util::TestFtlConfig;
using testing_util::TinyGeometry;

struct Rig {
  std::unique_ptr<Ftl> ftl;
  std::unique_ptr<MinidiskManager> manager;
};

Rig MakeDrainRig(uint32_t nominal_pec, uint32_t max_draining = 4) {
  Rig rig;
  FtlConfig ftl_config = TestFtlConfig(TinyGeometry(), nominal_pec);
  rig.ftl = std::make_unique<Ftl>(ftl_config);
  MinidiskConfig md_config;
  md_config.msize_opages = 64;
  md_config.drain_before_decommission = true;
  md_config.max_draining = max_draining;
  rig.manager = std::make_unique<MinidiskManager>(rig.ftl.get(), md_config);
  return rig;
}

// Ages until the first drain starts; returns the draining mDisk id.
MinidiskId AgeUntilDraining(Rig& rig, uint64_t max_writes = 3000000) {
  Rng rng(55);
  uint64_t writes = 0;
  while (rig.manager->draining_minidisks() == 0 && writes < max_writes) {
    MinidiskId md = UINT32_MAX;
    for (MinidiskId i = 0; i < rig.manager->total_minidisks(); ++i) {
      if (rig.manager->IsLive(i)) {
        md = i;
        break;
      }
    }
    if (md == UINT32_MAX) {
      break;
    }
    (void)rig.manager->Write(md, rng.UniformU64(64));
    ++writes;
  }
  for (MinidiskId i = 0; i < rig.manager->total_minidisks(); ++i) {
    if (rig.manager->minidisk(i).state == MinidiskState::kDraining) {
      return i;
    }
  }
  return UINT32_MAX;
}

TEST(DrainTest, WearTriggersDrainingInsteadOfImmediateTrim) {
  Rig rig = MakeDrainRig(/*nominal_pec=*/20);
  const MinidiskId draining = AgeUntilDraining(rig);
  ASSERT_NE(draining, UINT32_MAX) << "no drain started";
  EXPECT_GE(rig.manager->draining_minidisks(), 1u);
  // A kDraining event must have been emitted for it.
  bool saw_draining_event = false;
  for (const MinidiskEvent& event : rig.manager->TakeEvents()) {
    if (event.type == MinidiskEventType::kDraining &&
        event.mdisk == draining) {
      saw_draining_event = true;
    }
  }
  EXPECT_TRUE(saw_draining_event);
}

TEST(DrainTest, DrainingMinidiskIsReadOnly) {
  Rig rig = MakeDrainRig(/*nominal_pec=*/20);
  // Seed some data everywhere so the draining victim has content.
  for (MinidiskId md = 0; md < rig.manager->total_minidisks(); ++md) {
    for (uint64_t lba = 0; lba < 8; ++lba) {
      ASSERT_TRUE(rig.manager->Write(md, lba).ok());
    }
  }
  const MinidiskId draining = AgeUntilDraining(rig);
  ASSERT_NE(draining, UINT32_MAX);
  // Reads still work (data is maintained during the grace period)...
  bool any_read_ok = false;
  for (uint64_t lba = 0; lba < 64; ++lba) {
    if (rig.manager->Read(draining, lba).ok()) {
      any_read_ok = true;
      break;
    }
  }
  EXPECT_TRUE(any_read_ok);
  // ...but writes are rejected.
  auto write = rig.manager->Write(draining, 0);
  EXPECT_FALSE(write.ok());
  EXPECT_EQ(write.status().code(), StatusCode::kFailedPrecondition);
}

TEST(DrainTest, AckDrainReclaimsAndEmitsDecommissioned) {
  Rig rig = MakeDrainRig(/*nominal_pec=*/20);
  const MinidiskId draining = AgeUntilDraining(rig);
  ASSERT_NE(draining, UINT32_MAX);
  rig.manager->TakeEvents();

  ASSERT_TRUE(rig.manager->AckDrain(draining).ok());
  EXPECT_EQ(rig.manager->minidisk(draining).state,
            MinidiskState::kDecommissioned);
  EXPECT_EQ(rig.manager->Read(draining, 0).status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(rig.manager->drains_forced(), 0u);

  bool saw_decommissioned = false;
  for (const MinidiskEvent& event : rig.manager->TakeEvents()) {
    if (event.type == MinidiskEventType::kDecommissioned &&
        event.mdisk == draining) {
      saw_decommissioned = true;
    }
  }
  EXPECT_TRUE(saw_decommissioned);
}

TEST(DrainTest, AckDrainValidation) {
  Rig rig = MakeDrainRig(/*nominal_pec=*/1000000);
  EXPECT_EQ(rig.manager->AckDrain(9999).code(), StatusCode::kNotFound);
  EXPECT_EQ(rig.manager->AckDrain(0).code(),
            StatusCode::kFailedPrecondition);  // live, not draining
}

TEST(DrainTest, UnackedDeviceEndsReadOnlyNotWedged) {
  // Never ack; write until the device runs out of live capacity. Shedding
  // prefers live victims over force-closing grace windows, so the device
  // must end in a read-only state: zero live mDisks, the (bounded) set of
  // draining mDisks still readable, and no wedge.
  Rig rig = MakeDrainRig(/*nominal_pec=*/15, /*max_draining=*/2);
  Rng rng(77);
  uint64_t writes = 0;
  for (; writes < 3000000; ++writes) {
    MinidiskId md = UINT32_MAX;
    for (MinidiskId i = 0; i < rig.manager->total_minidisks(); ++i) {
      if (rig.manager->IsLive(i)) {
        md = i;
        break;
      }
    }
    if (md == UINT32_MAX) {
      break;  // no live mDisks left: end of writable life
    }
    (void)rig.manager->Write(md, rng.UniformU64(64));
    ASSERT_LE(rig.manager->draining_minidisks(), 2u);
  }
  EXPECT_EQ(rig.manager->live_minidisks(), 0u);
  EXPECT_GT(rig.manager->draining_minidisks(), 0u);
  // The grace windows survived: acking them still works.
  for (MinidiskId i = 0; i < rig.manager->total_minidisks(); ++i) {
    if (rig.manager->minidisk(i).state == MinidiskState::kDraining) {
      EXPECT_TRUE(rig.manager->AckDrain(i).ok());
    }
  }
  EXPECT_EQ(rig.manager->draining_minidisks(), 0u);
}

TEST(DrainTest, DrainingBoundedByConfig) {
  Rig rig = MakeDrainRig(/*nominal_pec=*/15, /*max_draining=*/3);
  Rng rng(88);
  for (uint64_t writes = 0; writes < 2000000; ++writes) {
    MinidiskId md = UINT32_MAX;
    for (MinidiskId i = 0; i < rig.manager->total_minidisks(); ++i) {
      if (rig.manager->IsLive(i)) {
        md = i;
        break;
      }
    }
    if (md == UINT32_MAX) {
      break;
    }
    (void)rig.manager->Write(md, rng.UniformU64(64));
    ASSERT_LE(rig.manager->draining_minidisks(), 3u);
  }
}

TEST(DrainTest, DisabledByDefault) {
  // Without the grace flag, decommissions go straight to kDecommissioned and
  // no kDraining events appear (regression guard for the base design).
  FtlConfig ftl_config = TestFtlConfig(TinyGeometry(), /*nominal_pec=*/15);
  Ftl ftl(ftl_config);
  MinidiskConfig md_config;
  md_config.msize_opages = 64;
  MinidiskManager manager(&ftl, md_config);
  Rng rng(99);
  uint64_t writes = 0;
  while (manager.decommissioned_total() < 2 && writes < 2000000 &&
         manager.live_minidisks() > 0) {
    MinidiskId md = 0;
    for (MinidiskId i = 0; i < manager.total_minidisks(); ++i) {
      if (manager.IsLive(i)) {
        md = i;
        break;
      }
    }
    (void)manager.Write(md, rng.UniformU64(64));
    ++writes;
  }
  EXPECT_EQ(manager.draining_minidisks(), 0u);
  for (const MinidiskEvent& event : manager.TakeEvents()) {
    EXPECT_NE(event.type, MinidiskEventType::kDraining);
  }
}

}  // namespace
}  // namespace salamander
