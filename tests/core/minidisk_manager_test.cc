#include "core/minidisk_manager.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "tests/testing/device_builder.h"

namespace salamander {
namespace {

using testing_util::TestFtlConfig;
using testing_util::TinyGeometry;

struct Rig {
  std::unique_ptr<Ftl> ftl;
  std::unique_ptr<MinidiskManager> manager;
};

Rig MakeRig(uint32_t nominal_pec = 1000000, unsigned max_level = 0,
            uint64_t msize = 64,
            VictimPolicy policy = VictimPolicy::kLeastValid) {
  Rig rig;
  FtlConfig ftl_config = TestFtlConfig(TinyGeometry(), nominal_pec);
  ftl_config.max_usable_level = max_level;
  rig.ftl = std::make_unique<Ftl>(ftl_config);
  MinidiskConfig md_config;
  md_config.msize_opages = msize;
  md_config.victim_policy = policy;
  rig.manager = std::make_unique<MinidiskManager>(rig.ftl.get(), md_config);
  return rig;
}

TEST(MinidiskManagerTest, FormatsExpectedMinidiskCount) {
  Rig rig = MakeRig();
  // 1024 raw oPages, reserve = max(7% x 1024, 4 blocks x 64) = 256,
  // available = 768 -> 12 mDisks of 64 oPages.
  EXPECT_EQ(rig.manager->total_minidisks(), 12u);
  EXPECT_EQ(rig.manager->live_minidisks(), 12u);
  EXPECT_EQ(rig.manager->live_capacity_bytes(), 12u * 64 * 4096);
}

TEST(MinidiskManagerTest, FormatEmitsCreatedEvents) {
  Rig rig = MakeRig();
  auto events = rig.manager->TakeEvents();
  ASSERT_EQ(events.size(), 12u);
  for (uint32_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].type, MinidiskEventType::kCreated);
    EXPECT_EQ(events[i].mdisk, i);
  }
  EXPECT_TRUE(rig.manager->TakeEvents().empty());  // drained
}

TEST(MinidiskManagerTest, WriteReadRoundTrip) {
  Rig rig = MakeRig();
  ASSERT_TRUE(rig.manager->Write(3, 10).ok());
  auto read = rig.manager->Read(3, 10);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(rig.manager->valid_lbas(3), 1u);
}

TEST(MinidiskManagerTest, IoValidation) {
  Rig rig = MakeRig();
  EXPECT_EQ(rig.manager->Write(99, 0).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(rig.manager->Write(0, 64).status().code(),
            StatusCode::kOutOfRange);
  EXPECT_EQ(rig.manager->Read(99, 0).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(rig.manager->Read(0, 999).status().code(),
            StatusCode::kOutOfRange);
  EXPECT_EQ(rig.manager->Read(0, 0).status().code(), StatusCode::kNotFound);
}

TEST(MinidiskManagerTest, MinidisksAreIsolatedAddressSpaces) {
  Rig rig = MakeRig();
  ASSERT_TRUE(rig.manager->Write(0, 5).ok());
  // Same LBA in another mDisk is independent.
  EXPECT_EQ(rig.manager->Read(1, 5).status().code(), StatusCode::kNotFound);
}

TEST(MinidiskManagerTest, ReadRangeWithinMinidisk) {
  Rig rig = MakeRig();
  for (uint64_t lba = 0; lba < 8; ++lba) {
    ASSERT_TRUE(rig.manager->Write(2, lba).ok());
  }
  auto range = rig.manager->ReadRange(2, 0, 8);
  ASSERT_TRUE(range.ok());
  EXPECT_EQ(rig.manager->ReadRange(2, 60, 8).status().code(),
            StatusCode::kOutOfRange);
}

TEST(MinidiskManagerTest, ValidCountTracksDistinctLbas) {
  Rig rig = MakeRig();
  ASSERT_TRUE(rig.manager->Write(1, 7).ok());
  ASSERT_TRUE(rig.manager->Write(1, 7).ok());  // overwrite
  ASSERT_TRUE(rig.manager->Write(1, 8).ok());
  EXPECT_EQ(rig.manager->valid_lbas(1), 2u);
}

// Ages the device until at least `target` decommissions happen (or writes
// stop succeeding anywhere).
void AgeUntilDecommissions(Rig& rig, uint64_t target, uint64_t max_writes) {
  Rng rng(77);
  uint64_t writes = 0;
  while (rig.manager->decommissioned_total() < target &&
         writes < max_writes && rig.manager->live_minidisks() > 0) {
    // Pick any live mDisk.
    MinidiskId md = 0;
    for (MinidiskId i = 0; i < rig.manager->total_minidisks(); ++i) {
      if (rig.manager->IsLive(i)) {
        md = i;
        break;
      }
    }
    (void)rig.manager->Write(md, rng.UniformU64(rig.manager->msize_opages()));
    ++writes;
  }
}

TEST(MinidiskManagerTest, WearDecommissionsMinidisks) {
  Rig rig = MakeRig(/*nominal_pec=*/20);
  AgeUntilDecommissions(rig, 2, 2000000);
  EXPECT_GE(rig.manager->decommissioned_total(), 2u);
  EXPECT_LT(rig.manager->live_minidisks(), 12u);
  auto events = rig.manager->TakeEvents();
  uint64_t decommissions = 0;
  for (const auto& event : events) {
    if (event.type == MinidiskEventType::kDecommissioned) {
      ++decommissions;
      EXPECT_FALSE(rig.manager->IsLive(event.mdisk));
    }
  }
  EXPECT_GE(decommissions + 0u, 2u);
}

TEST(MinidiskManagerTest, DecommissionedMinidiskRejectsIo) {
  Rig rig = MakeRig(/*nominal_pec=*/20);
  AgeUntilDecommissions(rig, 1, 2000000);
  ASSERT_GE(rig.manager->decommissioned_total(), 1u);
  MinidiskId dead = 0;
  for (MinidiskId i = 0; i < rig.manager->total_minidisks(); ++i) {
    if (!rig.manager->IsLive(i)) {
      dead = i;
      break;
    }
  }
  EXPECT_EQ(rig.manager->Write(dead, 0).status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(rig.manager->Read(dead, 0).status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(rig.manager->valid_lbas(dead), 0u);
}

TEST(MinidiskManagerTest, LeastValidPolicyPrefersEmptyMinidisk) {
  Rig rig = MakeRig(/*nominal_pec=*/20, 0, 64, VictimPolicy::kLeastValid);
  // Fill every mDisk except #5.
  Rng rng(5);
  for (MinidiskId md = 0; md < rig.manager->total_minidisks(); ++md) {
    if (md == 5) {
      continue;
    }
    for (uint64_t lba = 0; lba < 16; ++lba) {
      ASSERT_TRUE(rig.manager->Write(md, lba).ok());
    }
  }
  AgeUntilDecommissions(rig, 1, 2000000);
  ASSERT_GE(rig.manager->decommissioned_total(), 1u);
  // The empty mDisk must be the first victim.
  EXPECT_FALSE(rig.manager->IsLive(5));
}

TEST(MinidiskManagerTest, RegenSCreatesNewMinidisks) {
  Rig rig = MakeRig(/*nominal_pec=*/15, /*max_level=*/1);
  const uint32_t initial = rig.manager->total_minidisks();
  Rng rng(13);
  uint64_t writes = 0;
  while (rig.manager->regenerated_total() == 0 && writes < 3000000 &&
         rig.manager->live_minidisks() > 0) {
    MinidiskId md = 0;
    for (MinidiskId i = 0; i < rig.manager->total_minidisks(); ++i) {
      if (rig.manager->IsLive(i)) {
        md = i;
        break;
      }
    }
    (void)rig.manager->Write(md, rng.UniformU64(64));
    ++writes;
  }
  EXPECT_GT(rig.manager->regenerated_total(), 0u);
  EXPECT_GT(rig.manager->total_minidisks(), initial);
  // Regenerated mDisks carry a tiredness label >= 1.
  const Minidisk& regen = rig.manager->minidisk(initial);
  EXPECT_GE(regen.tiredness_level, 1u);
}

TEST(MinidiskManagerTest, ShrinkSNeverRegenerates) {
  Rig rig = MakeRig(/*nominal_pec=*/15, /*max_level=*/0);
  AgeUntilDecommissions(rig, 5, 3000000);
  EXPECT_EQ(rig.manager->regenerated_total(), 0u);
  EXPECT_EQ(rig.manager->total_minidisks(), 12u);
}

TEST(MinidiskManagerTest, CapacityDeclinesMonotonically) {
  Rig rig = MakeRig(/*nominal_pec=*/15, /*max_level=*/0);
  Rng rng(3);
  uint64_t last_capacity = rig.manager->live_capacity_bytes();
  for (int i = 0; i < 500000 && rig.manager->live_minidisks() > 0; ++i) {
    MinidiskId md = 0;
    for (MinidiskId j = 0; j < rig.manager->total_minidisks(); ++j) {
      if (rig.manager->IsLive(j)) {
        md = j;
        break;
      }
    }
    (void)rig.manager->Write(md, rng.UniformU64(64));
    const uint64_t capacity = rig.manager->live_capacity_bytes();
    ASSERT_LE(capacity, last_capacity) << "ShrinkS capacity grew";
    last_capacity = capacity;
  }
  EXPECT_LT(last_capacity, 12u * 64 * 4096);
}

}  // namespace
}  // namespace salamander
