// Deterministic crash-point sweep (crash-restart recovery gate).
//
// Phase A — FTL replay sweep. A fixed op sequence (writes/trims/flushes from
// a seeded RNG) runs against a small FTL. For every op boundary o and every
// torn-record count tau in [0, unsynced journal tail at o] — i.e. every
// journal record boundary a power loss can land on — a fresh FTL executes
// ops [0, o), suffers SimulatePowerLoss(tau), and replays. Asserted per run:
//
//  * Replay() succeeds (it returns CheckInvariants() on the rebuilt state);
//  * every durably-mapped logical page keeps its exact pre-crash slot
//    (tau = 0), or keeps it unless flagged rolled back (tau > 0);
//  * every page whose newest acknowledged write was still buffered is
//    flagged rolled back — volatile buffers never survive;
//  * unmapped/trimmed pages stay unmapped (or are flagged rolled back when
//    the trim record itself was torn);
//  * a second power loss + replay reproduces the same StateDigest();
//  * the replayed FTL still serves writes and reads.
//
// Crash points are sharded across a thread pool; the per-point digest
// vector must be byte-identical to a serial sweep (--threads only buys
// wall-clock, as everywhere else in this repo).
//
// Phase B — cluster crash scenarios. Small diFS (R=3) and EC (RS(2+2))
// universes whose devices carry torn-journal-write injectors. Each scenario
// power-fails one device and drives it through a suspect-window path —
// restart within grace, grace expiry, brick upgrade mid-window, and the
// legacy grace=0 declare-immediately path — then reconciles to quiescence
// and asserts zero chunk/stripe loss, full re-replication, cluster
// invariants, and the expected suspect-window counters. Scenarios are
// independent universes, run twice (and across the pool) to prove the
// outcome digests are reproducible.
//
// Emits BENCH_crash_sweep.json (cwd); exits nonzero on any violation so it
// can run as a CI gate.
#include <cstdint>
#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "difs/cluster.h"
#include "difs/ec_cluster.h"
#include "ecc/tiredness.h"
#include "faults/fault_injector.h"
#include "flash/wear_model.h"
#include "ftl/ftl.h"
#include "ssd/ssd_device.h"

namespace salamander {
namespace {

// ---------------------------------------------------------------------------
// Digest helpers (FNV-1a over little-endian words, same flavor the FTL uses)
// ---------------------------------------------------------------------------

constexpr uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr uint64_t kFnvPrime = 1099511628211ULL;

uint64_t FoldU64(uint64_t h, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xffu;
    h *= kFnvPrime;
  }
  return h;
}

// ---------------------------------------------------------------------------
// Phase A — FTL replay sweep
// ---------------------------------------------------------------------------

struct SweepOp {
  enum Kind : uint8_t { kWrite, kTrim, kFlush };
  Kind kind = kWrite;
  uint64_t lpo = 0;
};

FtlConfig SweepFtlConfig(uint64_t l2p_cache_entries = 0) {
  FtlConfig config;
  // 16 blocks x 16 fPages x 4 oPages = 1024 physical oPages: large enough
  // for GC and journal compaction to engage, small enough that thousands of
  // prefix re-executions stay cheap.
  config.geometry.channels = 1;
  config.geometry.dies_per_channel = 1;
  config.geometry.planes_per_die = 1;
  config.geometry.blocks_per_plane = 16;
  config.geometry.fpages_per_block = 16;
  config.ecc_geometry = FPageEccGeometry{};
  // Endurance far beyond the sweep's write volume: wear-out must not
  // interleave page retirements with the crash/replay assertions.
  config.wear = WearModel::Calibrate(
      ComputeTirednessLevel(config.ecc_geometry, 0).max_tolerable_rber,
      /*nominal_pec=*/1000000);
  config.seed = 20260805;
  if (l2p_cache_entries > 0) {
    // Bounded-L2P universe: tiny (8-entry) map pages spread the logical
    // space across many map pages, so dirty-map write-back — and therefore
    // unsynced kMapFlush records — lands between most op boundaries, putting
    // torn map flushes squarely inside the tau sweep.
    config.l2p_cache_entries = l2p_cache_entries;
    config.l2p_entries_per_map_page = 8;
  }
  return config;
}

std::vector<SweepOp> MakeOps(uint64_t count, uint64_t logical_opages,
                             uint64_t seed) {
  Rng rng(seed);
  std::vector<SweepOp> ops;
  ops.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    SweepOp op;
    const uint64_t kind = rng.UniformInRange(0, 99);
    op.kind = kind < 70    ? SweepOp::kWrite
              : kind < 88  ? SweepOp::kTrim
                           : SweepOp::kFlush;
    op.lpo = rng.UniformInRange(0, logical_opages - 1);
    ops.push_back(op);
  }
  return ops;
}

std::unique_ptr<Ftl> BuildSweepFtl(uint64_t logical_opages,
                                   uint64_t l2p_cache_entries = 0) {
  auto ftl = std::make_unique<Ftl>(SweepFtlConfig(l2p_cache_entries));
  ftl->ExtendLogicalSpace(logical_opages);
  // The space extension models an mDisk carve: durable before first use, so
  // a torn tail can never shrink the logical space mid-sweep.
  ftl->SyncJournal();
  return ftl;
}

// Applies ops [0, count) and tracks, per logical page, whether its newest
// acknowledged op was a write (the oracle for the rolled-back assertions).
bool ApplyPrefix(Ftl& ftl, const std::vector<SweepOp>& ops, uint64_t count,
                 std::vector<uint8_t>& acked, std::string& error) {
  for (uint64_t i = 0; i < count; ++i) {
    const SweepOp& op = ops[i];
    switch (op.kind) {
      case SweepOp::kWrite:
        if (!ftl.Write(op.lpo).ok()) {
          error = "op " + std::to_string(i) + ": write failed";
          return false;
        }
        acked[op.lpo] = 1;
        break;
      case SweepOp::kTrim:
        if (!ftl.Trim(op.lpo).ok()) {
          error = "op " + std::to_string(i) + ": trim failed";
          return false;
        }
        acked[op.lpo] = 0;
        break;
      case SweepOp::kFlush:
        if (!ftl.Flush().ok()) {
          error = "op " + std::to_string(i) + ": flush failed";
          return false;
        }
        break;
    }
  }
  return true;
}

struct PointResult {
  uint64_t digest = 0;
  uint32_t replays = 0;
  std::vector<std::string> violations;
};

void Violation(PointResult& out, uint64_t point, uint64_t tau,
               const std::string& what) {
  if (out.violations.size() < 8) {  // keep reports readable
    out.violations.push_back("point " + std::to_string(point) + " tau " +
                             std::to_string(tau) + ": " + what);
  }
}

// Sweeps one crash point: every torn-tail length tau against the state after
// ops [0, point).
void SweepPoint(const std::vector<SweepOp>& ops, uint64_t point,
                uint64_t logical_opages, uint64_t l2p_cache_entries,
                PointResult& out) {
  out.digest = FoldU64(kFnvOffset, point);

  // Oracle, captured once: the prefix execution is deterministic, so every
  // tau variant reaches the identical pre-crash state.
  std::vector<uint64_t> pre_slot;
  std::vector<uint8_t> acked(logical_opages, 0);
  uint64_t unsynced = 0;

  for (uint64_t tau = 0; tau == 0 || tau <= unsynced; ++tau) {
    std::unique_ptr<Ftl> ftl =
        BuildSweepFtl(logical_opages, l2p_cache_entries);
    std::string error;
    std::vector<uint8_t> run_acked(logical_opages, 0);
    if (!ApplyPrefix(*ftl, ops, point, run_acked, error)) {
      Violation(out, point, tau, error);
      return;
    }
    if (tau == 0) {
      acked = run_acked;
      unsynced = ftl->journal().unsynced();
      pre_slot.resize(logical_opages);
      for (uint64_t lpo = 0; lpo < logical_opages; ++lpo) {
        pre_slot[lpo] = ftl->PhysicalSlot(lpo);
      }
    }

    ftl->SimulatePowerLoss(tau);
    const Status replayed = ftl->Replay();
    ++out.replays;
    if (!replayed.ok()) {
      Violation(out, point, tau,
                "replay failed: " + std::string(replayed.message()));
      continue;
    }

    for (uint64_t lpo = 0; lpo < logical_opages; ++lpo) {
      const uint64_t post = ftl->PhysicalSlot(lpo);
      const bool rolled_back = ftl->LpoRolledBack(lpo);
      if (pre_slot[lpo] != Ftl::kUnmappedSlot) {
        // Durably mapped before the crash: the slot must survive exactly;
        // only a torn journal tail may instead roll the page back.
        if (post != pre_slot[lpo] && (tau == 0 || !rolled_back)) {
          Violation(out, point, tau,
                    "lpo " + std::to_string(lpo) + " durable slot " +
                        std::to_string(pre_slot[lpo]) + " became " +
                        std::to_string(post) + " without rollback flag");
        }
      } else if (acked[lpo] != 0) {
        // Newest acknowledged write was still in the volatile buffer: the
        // page must be flagged rolled back, whatever tau.
        if (!rolled_back) {
          Violation(out, point, tau,
                    "lpo " + std::to_string(lpo) +
                        " lost its buffered write silently");
        }
      } else {
        // Never written, or trimmed last: stays unmapped — unless the trim
        // record itself died in the torn tail, which must be flagged.
        if (post != Ftl::kUnmappedSlot && (tau == 0 || !rolled_back)) {
          Violation(out, point, tau,
                    "lpo " + std::to_string(lpo) +
                        " reappeared after trim without rollback flag");
        }
      }
    }

    // Replay determinism: a second power loss (nothing left to lose) and
    // replay must land on the same logical state.
    const uint64_t digest_first = ftl->StateDigest();
    ftl->SimulatePowerLoss(0);
    if (!ftl->Replay().ok()) {
      Violation(out, point, tau, "second replay failed");
      continue;
    }
    if (ftl->StateDigest() != digest_first) {
      Violation(out, point, tau, "replay is not deterministic");
    }

    // Serviceability: a replayed FTL is a working FTL.
    if (!ftl->Write(0).ok() || !ftl->Flush().ok() || !ftl->Read(0).ok()) {
      Violation(out, point, tau, "replayed FTL failed post-crash I/O");
    }

    out.digest = FoldU64(out.digest, tau);
    out.digest = FoldU64(out.digest, digest_first);
  }
}

// ---------------------------------------------------------------------------
// Phase B — cluster crash scenarios
// ---------------------------------------------------------------------------

struct Scenario {
  enum Action : uint8_t {
    kRestartWithinGrace,  // dark, comes back, reconciled in place
    kGraceExpires,        // never comes back: window expires into losses
    kBrickUpgrade,        // permanent failure lands mid-window
    kLegacyRestart,       // grace = 0: declare immediately, then restart
  };
  const char* name = "";
  bool ec = false;
  uint32_t grace = 0;
  Action action = kRestartWithinGrace;
};

constexpr Scenario kScenarios[] = {
    {"difs/restart-within-grace", false, 32, Scenario::kRestartWithinGrace},
    {"difs/grace-expires", false, 2, Scenario::kGraceExpires},
    {"difs/brick-upgrade", false, 32, Scenario::kBrickUpgrade},
    {"difs/legacy-no-grace", false, 0, Scenario::kLegacyRestart},
    {"ec/restart-within-grace", true, 32, Scenario::kRestartWithinGrace},
    {"ec/grace-expires", true, 2, Scenario::kGraceExpires},
};

struct ScenarioResult {
  std::string name;
  std::string kind;
  uint64_t digest = 0;
  uint64_t data_lost = 0;       // chunks_lost / stripes_lost
  uint64_t windows_started = 0;
  uint64_t windows_expired = 0;
  uint64_t devices_returned = 0;
  std::vector<std::string> violations;
};

void ScenarioViolation(ScenarioResult& out, const std::string& what) {
  if (out.violations.size() < 8) {
    out.violations.push_back(out.name + ": " + what);
  }
}

// Cluster device geometry: 32 blocks x 16 fPages x 4 oPages = 2048 oPages,
// carved into 64-oPage mDisks.
FlashGeometry ClusterGeometry() {
  FlashGeometry g;
  g.channels = 1;
  g.dies_per_channel = 1;
  g.planes_per_die = 1;
  g.blocks_per_plane = 32;
  g.fpages_per_block = 16;
  return g;
}

// Every device journals with a guaranteed-torn tail at power loss, so each
// crash exercises the replay rollback path, not just the buffer drop.
std::function<std::unique_ptr<SsdDevice>(uint32_t)> DeviceFactory(
    SsdKind kind, uint64_t base_seed) {
  FPageEccGeometry ecc;
  const WearModelConfig wear = WearModel::Calibrate(
      ComputeTirednessLevel(ecc, 0).max_tolerable_rber,
      /*nominal_pec=*/200000);
  return [kind, base_seed, wear, ecc](uint32_t index) {
    FaultConfig faults;
    faults.torn_journal_write = 1.0;
    faults.seed = base_seed + index;
    SsdConfig config = MakeSsdConfig(kind, ClusterGeometry(), wear,
                                     FlashLatencyConfig{}, ecc,
                                     base_seed + index * 17);
    config.minidisk.msize_opages = 64;
    config.faults = std::make_shared<FaultInjector>(faults, index);
    return std::make_unique<SsdDevice>(kind, config);
  };
}

void FoldSuspectStats(ScenarioResult& out, uint64_t started, uint64_t expired,
                      uint64_t returned, uint64_t revived, uint64_t stale) {
  out.windows_started = started;
  out.windows_expired = expired;
  out.devices_returned = returned;
  out.digest = FoldU64(out.digest, started);
  out.digest = FoldU64(out.digest, expired);
  out.digest = FoldU64(out.digest, returned);
  out.digest = FoldU64(out.digest, revived);
  out.digest = FoldU64(out.digest, stale);
}

void CheckSuspectCounters(ScenarioResult& out, Scenario::Action action) {
  switch (action) {
    case Scenario::kRestartWithinGrace:
      if (out.windows_started == 0 || out.devices_returned == 0) {
        ScenarioViolation(out, "suspect window never opened/resolved");
      }
      if (out.windows_expired != 0) {
        ScenarioViolation(out, "window expired despite restart in grace");
      }
      break;
    case Scenario::kGraceExpires:
      if (out.windows_started == 0 || out.windows_expired == 0) {
        ScenarioViolation(out, "grace window did not expire");
      }
      break;
    case Scenario::kBrickUpgrade:
      if (out.windows_started == 0) {
        ScenarioViolation(out, "suspect window never opened");
      }
      if (out.devices_returned != 0) {
        ScenarioViolation(out, "bricked device counted as returned");
      }
      break;
    case Scenario::kLegacyRestart:
      if (out.windows_started != 0) {
        ScenarioViolation(out, "grace = 0 must never open a window");
      }
      break;
  }
}

void RunDifsScenario(const Scenario& scenario, SsdKind kind,
                     uint64_t base_seed, ScenarioResult& out) {
  DifsConfig config;
  config.nodes = 5;
  config.devices_per_node = 1;
  config.replication = 3;
  config.chunk_opages = 64;
  config.fill_fraction = 0.5;
  config.seed = base_seed;
  config.resync_interval_ops = 8;  // one maintenance tick per 8 writes
  config.suspect_grace_ticks = scenario.grace;

  DifsCluster cluster(config, DeviceFactory(kind, base_seed));
  if (!cluster.Bootstrap().ok()) {
    ScenarioViolation(out, "bootstrap failed");
    return;
  }
  (void)cluster.StepWrites(64);  // warm generations past bootstrap

  const uint32_t victim = cluster.device_count() / 2;
  cluster.device(victim).Crash(SsdDevice::CrashKind::kPowerLoss);
  switch (scenario.action) {
    case Scenario::kRestartWithinGrace:
      (void)cluster.StepWrites(96);  // 12 ticks, inside the 32-tick grace
      if (!cluster.device(victim).Restart().ok()) {
        ScenarioViolation(out, "restart failed");
        return;
      }
      (void)cluster.StepWrites(64);  // next tick reconciles the device
      break;
    case Scenario::kGraceExpires:
      (void)cluster.StepWrites(96);  // 2-tick grace expires into losses
      break;
    case Scenario::kBrickUpgrade:
      (void)cluster.StepWrites(32);  // window opens...
      cluster.device(victim).Crash(SsdDevice::CrashKind::kPermanent);
      (void)cluster.StepWrites(64);  // ...and upgrades to a brick
      break;
    case Scenario::kLegacyRestart:
      (void)cluster.StepWrites(48);  // losses declared immediately
      if (!cluster.device(victim).Restart().ok()) {
        ScenarioViolation(out, "restart failed");
        return;
      }
      (void)cluster.StepWrites(64);  // capacity re-announced and reused
      break;
  }
  cluster.ForceReconcile();

  const Status invariants = cluster.CheckInvariants();
  if (!invariants.ok()) {
    ScenarioViolation(out,
                      "invariants: " + std::string(invariants.message()));
  }
  out.data_lost = cluster.chunks_lost();
  if (out.data_lost != 0) {
    ScenarioViolation(out, "lost " + std::to_string(out.data_lost) +
                               " chunks to a transient power loss");
  }
  if (cluster.chunks_under_replicated() != 0 ||
      cluster.pending_recovery_backlog() != 0) {
    ScenarioViolation(out, "recovery did not converge");
  }

  const DifsStats& stats = cluster.stats();
  out.digest = FoldU64(kFnvOffset, stats.foreground_opage_writes);
  out.digest = FoldU64(out.digest, stats.recovery_opage_writes);
  out.digest = FoldU64(out.digest, stats.recovery_opage_reads);
  out.digest = FoldU64(out.digest, stats.replicas_recovered);
  out.digest = FoldU64(out.digest, stats.replicas_lost);
  out.digest = FoldU64(out.digest, stats.resync_repairs);
  out.digest = FoldU64(out.digest, stats.maintenance_ticks);
  out.digest = FoldU64(out.digest, cluster.chunks_fully_replicated());
  out.digest = FoldU64(out.digest, cluster.free_slots());
  out.digest = FoldU64(out.digest, cluster.alive_devices());
  for (uint32_t d = 0; d < cluster.device_count(); ++d) {
    out.digest = FoldU64(out.digest, cluster.device(d).restarts());
  }
  FoldSuspectStats(out, stats.suspect_windows_started,
                   stats.suspect_windows_expired,
                   stats.suspect_devices_returned,
                   stats.suspect_replicas_revived,
                   stats.suspect_replicas_stale);
  CheckSuspectCounters(out, scenario.action);
}

void RunEcScenario(const Scenario& scenario, SsdKind kind, uint64_t base_seed,
                   ScenarioResult& out) {
  EcConfig config;
  config.nodes = 5;
  config.devices_per_node = 1;
  config.data_cells = 2;
  config.parity_cells = 2;
  config.cell_opages = 64;
  config.fill_fraction = 0.5;
  config.seed = base_seed;
  config.maintenance_interval_ops = 8;
  config.suspect_grace_ticks = scenario.grace;

  EcCluster cluster(config, DeviceFactory(kind, base_seed));
  if (!cluster.Bootstrap().ok()) {
    ScenarioViolation(out, "bootstrap failed");
    return;
  }
  (void)cluster.StepWrites(64);

  const uint32_t victim = cluster.device_count() / 2;
  cluster.device(victim).Crash(SsdDevice::CrashKind::kPowerLoss);
  switch (scenario.action) {
    case Scenario::kRestartWithinGrace:
      (void)cluster.StepWrites(96);
      if (!cluster.device(victim).Restart().ok()) {
        ScenarioViolation(out, "restart failed");
        return;
      }
      (void)cluster.StepWrites(64);
      break;
    case Scenario::kGraceExpires:
      (void)cluster.StepWrites(96);
      break;
    case Scenario::kBrickUpgrade:
    case Scenario::kLegacyRestart:
      ScenarioViolation(out, "unsupported EC scenario action");
      return;
  }
  cluster.ForceReconcile();

  out.data_lost = cluster.stats().stripes_lost;
  if (out.data_lost != 0) {
    ScenarioViolation(out, "lost " + std::to_string(out.data_lost) +
                               " stripes to a transient power loss");
  }
  if (cluster.stripes_fully_redundant() != cluster.total_stripes()) {
    ScenarioViolation(out, "rebuild did not restore full redundancy");
  }

  const EcStats& stats = cluster.stats();
  out.digest = FoldU64(kFnvOffset, stats.foreground_logical_writes);
  out.digest = FoldU64(out.digest, stats.foreground_device_writes);
  out.digest = FoldU64(out.digest, stats.rebuild_opage_reads);
  out.digest = FoldU64(out.digest, stats.rebuild_opage_writes);
  out.digest = FoldU64(out.digest, stats.cells_lost);
  out.digest = FoldU64(out.digest, stats.cells_rebuilt);
  out.digest = FoldU64(out.digest, stats.maintenance_ticks);
  out.digest = FoldU64(out.digest, cluster.stripes_fully_redundant());
  out.digest = FoldU64(out.digest, cluster.free_slots());
  out.digest = FoldU64(out.digest, cluster.alive_devices());
  for (uint32_t d = 0; d < cluster.device_count(); ++d) {
    out.digest = FoldU64(out.digest, cluster.device(d).restarts());
  }
  FoldSuspectStats(out, stats.suspect_windows_started,
                   stats.suspect_windows_expired,
                   stats.suspect_devices_returned,
                   stats.suspect_cells_revived, stats.suspect_cells_stale);
  CheckSuspectCounters(out, scenario.action);
}

void RunScenario(size_t index, ScenarioResult& out) {
  const Scenario& scenario = kScenarios[index];
  const SsdKind kind =
      (index % 2 == 0) ? SsdKind::kShrinkS : SsdKind::kRegenS;
  const uint64_t base_seed = 20260805 + index * 977;
  out.name = scenario.name;
  out.kind = std::string(SsdKindName(kind));
  if (scenario.ec) {
    RunEcScenario(scenario, kind, base_seed, out);
  } else {
    RunDifsScenario(scenario, kind, base_seed, out);
  }
}

}  // namespace
}  // namespace salamander

int main(int argc, char** argv) {
  using namespace salamander;
  const unsigned requested = bench::ParseThreads(argc, argv);
  const unsigned threads =
      requested == 0 ? ThreadPool::HardwareThreads() : requested;
  const uint64_t op_count = bench::ParseU64Flag(argc, argv, "--ops", 160);
  const uint64_t logical_opages =
      bench::ParseU64Flag(argc, argv, "--logical-opages", 256);
  const uint64_t l2p_cache_entries = bench::ParseL2pCacheEntries(argc, argv);

  bench::PrintHeader(
      "crash sweep — power-loss replay at every journal record boundary",
      "journaled FTL metadata replays to the exact pre-crash durable state, "
      "and diFS suspect windows keep transient outages lossless");
  std::printf("ops=%llu logical_opages=%llu threads=%u\n",
              static_cast<unsigned long long>(op_count),
              static_cast<unsigned long long>(logical_opages), threads);
  if (l2p_cache_entries > 0) {
    std::printf("l2p_cache_entries=%llu (bounded-L2P universe: torn-tail "
                "sweep across map-flush boundaries)\n",
                static_cast<unsigned long long>(l2p_cache_entries));
  }

  // ---- Phase A: FTL replay sweep -----------------------------------------
  bench::PrintSection("FTL replay sweep");
  const std::vector<SweepOp> ops =
      MakeOps(op_count, logical_opages, /*seed=*/0x5eedc4a5);
  const size_t points = static_cast<size_t>(op_count) + 1;

  std::vector<PointResult> serial_points(points);
  for (size_t o = 0; o < points; ++o) {
    SweepPoint(ops, o, logical_opages, /*l2p_cache_entries=*/0,
               serial_points[o]);
  }
  std::vector<PointResult> parallel_points(points);
  {
    ThreadPool pool(threads);
    pool.ParallelFor(points, [&](size_t begin, size_t end) {
      for (size_t o = begin; o < end; ++o) {
        SweepPoint(ops, o, logical_opages, /*l2p_cache_entries=*/0,
                   parallel_points[o]);
      }
    });
  }

  uint64_t ftl_replays = 0;
  uint64_t ftl_digest = kFnvOffset;
  size_t ftl_violations = 0;
  bool ftl_identical = true;
  for (size_t o = 0; o < points; ++o) {
    ftl_replays += parallel_points[o].replays;
    ftl_digest = FoldU64(ftl_digest, parallel_points[o].digest);
    ftl_violations += parallel_points[o].violations.size();
    ftl_identical &= serial_points[o].digest == parallel_points[o].digest;
    for (const std::string& v : parallel_points[o].violations) {
      std::printf("VIOLATION: %s\n", v.c_str());
    }
  }
  std::printf("crash_points=%zu replays=%llu violations=%zu "
              "serial_parallel_identical=%s digest=0x%016llx\n",
              points, static_cast<unsigned long long>(ftl_replays),
              ftl_violations, ftl_identical ? "yes" : "NO — BUG",
              static_cast<unsigned long long>(ftl_digest));

  // ---- Phase A2: bounded-L2P replay sweep (--l2p-cache-entries > 0) ------
  // Same every-boundary × every-tear grid, but the FTL pages its map to
  // flash: dirty cache pages at the crash, torn kMapFlush records, and
  // replayed map-page reconstruction all land inside the sweep. The default
  // (0) skips this phase entirely, keeping output byte-identical.
  uint64_t l2p_replays = 0;
  uint64_t l2p_digest = kFnvOffset;
  size_t l2p_violations = 0;
  bool l2p_identical = true;
  if (l2p_cache_entries > 0) {
    bench::PrintSection("FTL replay sweep (bounded L2P)");
    std::vector<PointResult> l2p_serial(points);
    for (size_t o = 0; o < points; ++o) {
      SweepPoint(ops, o, logical_opages, l2p_cache_entries, l2p_serial[o]);
    }
    std::vector<PointResult> l2p_parallel(points);
    {
      ThreadPool pool(threads);
      pool.ParallelFor(points, [&](size_t begin, size_t end) {
        for (size_t o = begin; o < end; ++o) {
          SweepPoint(ops, o, logical_opages, l2p_cache_entries,
                     l2p_parallel[o]);
        }
      });
    }
    for (size_t o = 0; o < points; ++o) {
      l2p_replays += l2p_parallel[o].replays;
      l2p_digest = FoldU64(l2p_digest, l2p_parallel[o].digest);
      l2p_violations += l2p_parallel[o].violations.size();
      l2p_identical &= l2p_serial[o].digest == l2p_parallel[o].digest;
      for (const std::string& v : l2p_parallel[o].violations) {
        std::printf("VIOLATION: %s\n", v.c_str());
      }
    }
    std::printf("crash_points=%zu replays=%llu violations=%zu "
                "serial_parallel_identical=%s digest=0x%016llx\n",
                points, static_cast<unsigned long long>(l2p_replays),
                l2p_violations, l2p_identical ? "yes" : "NO — BUG",
                static_cast<unsigned long long>(l2p_digest));
  }

  // ---- Phase B: cluster crash scenarios ----------------------------------
  bench::PrintSection("cluster crash scenarios");
  const size_t scenario_count =
      sizeof(kScenarios) / sizeof(kScenarios[0]);
  std::vector<ScenarioResult> first_run(scenario_count);
  {
    ThreadPool pool(threads);
    pool.ParallelFor(scenario_count, [&](size_t begin, size_t end) {
      for (size_t i = begin; i < end; ++i) {
        RunScenario(i, first_run[i]);
      }
    });
  }
  std::vector<ScenarioResult> second_run(scenario_count);
  for (size_t i = 0; i < scenario_count; ++i) {
    RunScenario(i, second_run[i]);
  }

  uint64_t cluster_digest = kFnvOffset;
  size_t cluster_violations = 0;
  uint64_t data_lost = 0;
  bool cluster_identical = true;
  std::printf("scenario\tkind\tlost\twindows\texpired\treturned\tok\n");
  for (size_t i = 0; i < scenario_count; ++i) {
    const ScenarioResult& r = first_run[i];
    cluster_digest = FoldU64(cluster_digest, r.digest);
    cluster_violations += r.violations.size();
    data_lost += r.data_lost;
    cluster_identical &= r.digest == second_run[i].digest;
    std::printf("%s\t%s\t%llu\t%llu\t%llu\t%llu\t%s\n", r.name.c_str(),
                r.kind.c_str(), static_cast<unsigned long long>(r.data_lost),
                static_cast<unsigned long long>(r.windows_started),
                static_cast<unsigned long long>(r.windows_expired),
                static_cast<unsigned long long>(r.devices_returned),
                r.violations.empty() ? "yes" : "NO — BUG");
    for (const std::string& v : r.violations) {
      std::printf("VIOLATION: %s\n", v.c_str());
    }
  }
  std::printf("scenarios=%zu violations=%zu repeat_identical=%s "
              "digest=0x%016llx\n",
              scenario_count, cluster_violations,
              cluster_identical ? "yes" : "NO — BUG",
              static_cast<unsigned long long>(cluster_digest));

  // ---- JSON ---------------------------------------------------------------
  FILE* json = std::fopen("BENCH_crash_sweep.json", "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_crash_sweep.json\n");
    return 1;
  }
  std::fprintf(json,
               "{\n"
               "  \"bench\": \"crash_sweep\",\n"
               "  \"ops\": %llu,\n"
               "  \"logical_opages\": %llu,\n"
               "  \"crash_points\": %zu,\n"
               "  \"replays\": %llu,\n"
               "  \"ftl_violations\": %zu,\n"
               "  \"ftl_digest\": \"0x%016llx\",\n"
               "  \"ftl_serial_parallel_identical\": %s,\n",
               static_cast<unsigned long long>(op_count),
               static_cast<unsigned long long>(logical_opages), points,
               static_cast<unsigned long long>(ftl_replays), ftl_violations,
               static_cast<unsigned long long>(ftl_digest),
               ftl_identical ? "true" : "false");
  if (l2p_cache_entries > 0) {
    // Gated so the default-knob document stays byte-identical.
    std::fprintf(json,
                 "  \"l2p\": {\"cache_entries\": %llu, "
                 "\"crash_points\": %zu, \"replays\": %llu, "
                 "\"violations\": %zu, \"digest\": \"0x%016llx\", "
                 "\"serial_parallel_identical\": %s},\n",
                 static_cast<unsigned long long>(l2p_cache_entries), points,
                 static_cast<unsigned long long>(l2p_replays),
                 l2p_violations,
                 static_cast<unsigned long long>(l2p_digest),
                 l2p_identical ? "true" : "false");
  }
  std::fprintf(json, "  \"scenarios\": [\n");
  for (size_t i = 0; i < scenario_count; ++i) {
    const ScenarioResult& r = first_run[i];
    std::fprintf(json,
                 "    {\"name\": \"%s\", \"kind\": \"%s\", \"lost\": %llu, "
                 "\"windows_started\": %llu, \"windows_expired\": %llu, "
                 "\"devices_returned\": %llu, \"ok\": %s}%s\n",
                 r.name.c_str(), r.kind.c_str(),
                 static_cast<unsigned long long>(r.data_lost),
                 static_cast<unsigned long long>(r.windows_started),
                 static_cast<unsigned long long>(r.windows_expired),
                 static_cast<unsigned long long>(r.devices_returned),
                 r.violations.empty() ? "true" : "false",
                 i + 1 < scenario_count ? "," : "");
  }
  std::fprintf(json,
               "  ],\n"
               "  \"cluster_violations\": %zu,\n"
               "  \"cluster_digest\": \"0x%016llx\",\n"
               "  \"cluster_repeat_identical\": %s\n"
               "}\n",
               cluster_violations,
               static_cast<unsigned long long>(cluster_digest),
               cluster_identical ? "true" : "false");
  std::fclose(json);
  std::printf("\nwrote BENCH_crash_sweep.json\n");

  const bool ok = ftl_violations == 0 && cluster_violations == 0 &&
                  data_lost == 0 && ftl_identical && cluster_identical &&
                  l2p_violations == 0 && l2p_identical;
  return ok ? 0 : 1;
}
