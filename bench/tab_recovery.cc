// Reproduces §4.3's recovery-traffic analysis: volume and burstiness of
// diFS re-replication traffic under baseline vs Salamander devices.
//
// Claims checked:
//  * total recovery volume with mDisks is comparable to baseline ("the same
//    total number of LBAs fail over time"), at least without regeneration;
//  * Salamander spreads recovery over many small events instead of whole-
//    device bursts (lower max single-event traffic);
//  * RegenS adds some extra recovery because regenerated mDisks are
//    shorter-lived and re-fail.
#include <array>
#include <cstdio>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/thread_pool.h"
#include "difs/cluster.h"
#include "difs/ec_cluster.h"
#include "ecc/tiredness.h"
#include "flash/wear_model.h"

namespace salamander {
namespace {

struct RunResult {
  DifsStats stats;
  uint64_t foreground_total = 0;
  uint64_t max_burst_opages = 0;  // largest recovery delta in one step
  uint64_t recovery_events = 0;   // steps in which any recovery happened
  uint32_t devices_alive = 0;
  uint64_t chunks_lost = 0;
};

// Runs the cluster until `target_lost_replicas` replica failures have been
// observed (the paper's "same total number of LBAs fail over time" milestone)
// or the write budget / healthy regime is exhausted. Baseline reaches the
// milestone early (devices brick); Salamander reaches it much later (devices
// shed gradually) — the comparison is traffic *per failed LBA*.
RunResult RunCluster(SsdKind kind, uint64_t target_lost_replicas,
                     uint64_t foreground_budget, bool grace_drain = false,
                     uint32_t replication = 3, double fill = 0.45,
                     double forecast_horizon = 0.0) {
  DifsConfig config;
  config.nodes = 8;
  config.devices_per_node = 1;
  config.replication = replication;
  config.chunk_opages = 256;  // 1 MiB chunks == Salamander mSize
  config.fill_fraction = fill;
  config.seed = 31337;

  FPageEccGeometry ecc;
  const WearModelConfig wear = WearModel::Calibrate(
      ComputeTirednessLevel(ecc, 0).max_tolerable_rber, /*nominal_pec=*/40);
  auto factory = [&](uint32_t index) {
    SsdConfig ssd_config =
        MakeSsdConfig(kind, FlashGeometry::Small(), wear,
                      FlashLatencyConfig{}, ecc, 5000 + index * 17);
    if (kind == SsdKind::kShrinkS || kind == SsdKind::kRegenS) {
      ssd_config.minidisk.msize_opages = 256;
      ssd_config.minidisk.drain_before_decommission = grace_drain;
      ssd_config.minidisk.max_draining = 8;
      ssd_config.minidisk.drain_forecast_horizon = forecast_horizon;
    }
    return std::make_unique<SsdDevice>(kind, ssd_config);
  };

  DifsCluster cluster(config, factory);
  RunResult result;
  if (!cluster.Bootstrap().ok()) {
    return result;
  }
  constexpr uint64_t kStep = 2000;
  for (uint64_t written = 0; written < foreground_budget; written += kStep) {
    if (cluster.stats().replicas_lost >= target_lost_replicas ||
        !cluster.StepWrites(kStep).ok() ||
        cluster.alive_devices() < config.replication + 1) {
      break;
    }
  }
  result.recovery_events = cluster.stats().recovery_waves;
  result.max_burst_opages = cluster.stats().max_wave_recovery_opages;
  result.stats = cluster.stats();
  result.foreground_total = cluster.stats().foreground_opage_writes;
  result.devices_alive = cluster.alive_devices();
  result.chunks_lost = cluster.chunks_lost();
  return result;
}

}  // namespace
}  // namespace salamander

int main(int argc, char** argv) {
  using namespace salamander;
  bench::PrintHeader(
      "Section 4.3 — recovery traffic",
      "mDisk recovery volume comparable to baseline, but spread over many "
      "small events instead of whole-device bursts");
  ThreadPool pool(bench::ParseThreads(argc, argv));

  constexpr uint64_t kTargetLostReplicas = 50;   // ~50 MiB of failed LBAs
  constexpr uint64_t kForegroundBudget = 4000000;
  std::printf(
      "device\trecovered_MiB\tlost_replicas\trecovery_events\t"
      "max_burst_MiB\tforegroundK\tchunks_lost\tdevices_alive\n");
  // Each cluster run owns its devices and RNG streams; run the three kinds
  // on the pool and print rows in kind order afterwards.
  constexpr SsdKind kKinds[] = {SsdKind::kBaseline, SsdKind::kShrinkS,
                                SsdKind::kRegenS};
  std::array<RunResult, std::size(kKinds)> results;
  pool.ParallelFor(std::size(kKinds), [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      results[i] = RunCluster(kKinds[i], kTargetLostReplicas,
                              kForegroundBudget);
    }
  });
  for (size_t i = 0; i < std::size(kKinds); ++i) {
    const RunResult& result = results[i];
    std::printf("%s\t%.1f\t%llu\t%llu\t%.1f\t%llu\t%llu\t%u\n",
                std::string(SsdKindName(kKinds[i])).c_str(),
                static_cast<double>(result.stats.recovery_bytes()) /
                    (1024.0 * 1024.0),
                static_cast<unsigned long long>(result.stats.replicas_lost),
                static_cast<unsigned long long>(result.recovery_events),
                static_cast<double>(result.max_burst_opages) * 4096.0 /
                    (1024.0 * 1024.0),
                static_cast<unsigned long long>(
                    result.foreground_total / 1000),
                static_cast<unsigned long long>(result.chunks_lost),
                result.devices_alive);
  }

  bench::PrintSection(
      "erasure coding: RS(4+2) stripes instead of 3-way replication");
  std::printf(
      "EC rebuilds read k survivors per lost cell, so recovery READ traffic\n"
      "is k x the lost data — minidisk-granular failures keep each rebuild\n"
      "wave small, which matters even more under EC than replication.\n");
  std::printf(
      "device\tcells_lost\trebuild_read_MiB\trebuild_write_MiB\t"
      "stripes_lost\tdegraded\n");
  const auto run_ec = [&](SsdKind kind) -> std::optional<EcStats> {
    EcConfig ec_config;
    ec_config.nodes = 9;
    ec_config.data_cells = 4;
    ec_config.parity_cells = 2;
    ec_config.cell_opages = 256;
    ec_config.fill_fraction = 0.4;
    ec_config.seed = 31337;
    FPageEccGeometry ecc2;
    const WearModelConfig wear2 = WearModel::Calibrate(
        ComputeTirednessLevel(ecc2, 0).max_tolerable_rber,
        /*nominal_pec=*/40);
    auto ec_factory = [&](uint32_t index) {
      SsdConfig ssd_config =
          MakeSsdConfig(kind, FlashGeometry::Small(), wear2,
                        FlashLatencyConfig{}, ecc2, 5000 + index * 17);
      if (kind == SsdKind::kShrinkS || kind == SsdKind::kRegenS) {
        ssd_config.minidisk.msize_opages = 256;
      }
      auto device = std::make_unique<SsdDevice>(kind, ssd_config);
      // Rolling-deployment stagger: pre-age each device differently so the
      // fleet does not reach end-of-life in lockstep (uniform ages would
      // make correlated multi-node losses exceed EC's m, which no real
      // deployment tolerates). Events stay queued for the cluster.
      Rng pre_rng(900 + index);
      const uint64_t pre_writes = static_cast<uint64_t>(index) * 5000;
      const uint64_t msize = device->msize_opages();
      for (uint64_t w = 0; w < pre_writes; ++w) {
        (void)device->Write(
            static_cast<MinidiskId>(
                pre_rng.UniformU64(device->total_minidisks())),
            pre_rng.UniformU64(msize));
      }
      return device;
    };
    EcCluster ec_cluster(ec_config, ec_factory);
    if (!ec_cluster.Bootstrap().ok()) {
      return std::nullopt;
    }
    // Run both kinds to the same loss milestone (~one device's worth of
    // cells) so the rebuild-traffic comparison is per failed byte.
    constexpr uint64_t kEcLossMilestone = 12;
    for (uint64_t written = 0;
         written < kForegroundBudget &&
         ec_cluster.stats().cells_lost < kEcLossMilestone &&
         ec_cluster.alive_devices() >= 6;
         written += 500) {
      if (!ec_cluster.StepWrites(500).ok()) {
        break;
      }
    }
    return ec_cluster.stats();
  };
  constexpr SsdKind kEcKinds[] = {SsdKind::kBaseline, SsdKind::kShrinkS};
  std::array<std::optional<EcStats>, std::size(kEcKinds)> ec_results;
  pool.ParallelFor(std::size(kEcKinds), [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      ec_results[i] = run_ec(kEcKinds[i]);
    }
  });
  for (size_t i = 0; i < std::size(kEcKinds); ++i) {
    if (!ec_results[i]) {
      continue;
    }
    const EcStats& ec_stats = *ec_results[i];
    std::printf("%s\t%llu\t%.1f\t%.1f\t%llu\t%llu\n",
                std::string(SsdKindName(kEcKinds[i])).c_str(),
                static_cast<unsigned long long>(ec_stats.cells_lost),
                static_cast<double>(ec_stats.rebuild_read_bytes()) /
                    (1024.0 * 1024.0),
                static_cast<double>(ec_stats.rebuild_write_bytes()) /
                    (1024.0 * 1024.0),
                static_cast<unsigned long long>(ec_stats.stripes_lost),
                static_cast<unsigned long long>(ec_stats.degraded_reads));
  }

  bench::PrintSection(
      "ablation: grace-period decommissioning (§4.3 future work)");
  std::printf(
      "Run at replication factor 2, where the window between an mDisk's\n"
      "retirement and its chunks' re-replication is what stands between a\n"
      "transient deferral and permanent data loss.\n");
  std::printf(
      "mode\tlost_replicas\tdrains(acked/forced-losses)\tchunks_lost\n");
  struct GraceMode {
    const char* name;
    bool grace;
    double forecast;
  };
  constexpr GraceMode kModes[] = {GraceMode{"immediate", false, 0.0},
                                  GraceMode{"grace-reactive", true, 0.0},
                                  GraceMode{"grace-proactive", true, 0.15}};
  std::array<RunResult, std::size(kModes)> grace_results;
  pool.ParallelFor(std::size(kModes), [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      grace_results[i] =
          RunCluster(SsdKind::kShrinkS, /*target_lost_replicas=*/120,
                     kForegroundBudget, kModes[i].grace, /*replication=*/2,
                     /*fill=*/0.55, kModes[i].forecast);
    }
  });
  for (size_t i = 0; i < std::size(kModes); ++i) {
    const RunResult& result = grace_results[i];
    std::printf("%s\t%llu\t%llu/%llu\t%llu\n", kModes[i].name,
                static_cast<unsigned long long>(result.stats.replicas_lost),
                static_cast<unsigned long long>(result.stats.drains_acked),
                static_cast<unsigned long long>(
                    result.stats.drain_window_losses),
                static_cast<unsigned long long>(result.chunks_lost));
  }

  bench::PrintSection("interpretation");
  std::printf(
      "baseline: few recovery events, each a whole device's replicas.\n"
      "shrinks/regens: many events of ~1 chunk (1 MiB) each; max burst is\n"
      "orders of magnitude smaller. RegenS may show extra recovered volume\n"
      "from short-lived regenerated mDisks (the paper's noted caveat).\n"
      "\n"
      "grace ablation: most retirements complete their grace window (drains\n"
      "acked, zero forced-window losses), converting would-be replica losses\n"
      "into planned migrations. Residual chunk loss comes from hard capacity\n"
      "deficits that shed live mDisks immediately - a grace period cannot\n"
      "protect against capacity collapsing faster than one host round-trip.\n");
  return 0;
}
