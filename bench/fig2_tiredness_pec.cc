// Reproduces Fig. 2: "Switching oPages to additional ECC trades capacity for
// increasingly diminishing lifetime benefits."
//
// For each tiredness level L of the paper's running example (16 KiB fPage,
// four 4 KiB oPages, 2 KiB spare), computes the code rate, the maximum
// tolerable RBER of the stronger code, and — through a wear model calibrated
// so a median page retires from L0 at 3000 P/E cycles — the PEC at which a
// page retires from level L. The headline: L1 buys ~+50% PEC for 25% of the
// page's capacity, and returns diminish steeply after that (the paper's
// argument for limiting RegenS to L < 2).
#include <cstdio>

#include "bench/bench_util.h"
#include "ecc/tiredness.h"
#include "flash/wear_model.h"

namespace salamander {
namespace {

void PrintLadder(const FPageEccGeometry& geometry, uint32_t nominal_pec) {
  const auto ladder = ComputeTirednessLadder(geometry);
  const WearModel wear(
      WearModel::Calibrate(ladder[0].max_tolerable_rber, nominal_pec));

  std::printf(
      "level\tdata_oPages\tcode_rate\ttolerable_RBER\tretire_PEC\t"
      "PEC_benefit\tcapacity_cost\n");
  const double pec_l0 = wear.PecAtRber(ladder[0].max_tolerable_rber);
  for (const TirednessLevelEcc& level : ladder) {
    if (level.data_opages == 0) {
      std::printf("L%u\t0\t-\t-\t-\t-\t-100%%  (page dead)\n", level.level);
      continue;
    }
    const double pec = wear.PecAtRber(level.max_tolerable_rber);
    const double benefit = pec / pec_l0 - 1.0;
    const double capacity_cost =
        1.0 - static_cast<double>(level.data_opages) /
                  static_cast<double>(geometry.opages_per_fpage);
    std::printf("L%u\t%u\t%.3f\t%.3e\t%.0f\t%+.1f%%\t-%.0f%%\n", level.level,
                level.data_opages, level.code_rate, level.max_tolerable_rber,
                pec, benefit * 100.0, capacity_cost * 100.0);
  }

  // Marginal utility: PEC benefit per oPage sacrificed — the "increasingly
  // diminishing" shape of Fig. 2.
  bench::PrintSection("marginal PEC benefit per sacrificed oPage");
  double prev_pec = pec_l0;
  for (unsigned level = 1; level < ladder.size(); ++level) {
    if (ladder[level].data_opages == 0) {
      break;
    }
    const double pec = wear.PecAtRber(ladder[level].max_tolerable_rber);
    std::printf("L%u->L%u\t%+.1f%% PEC for 1 oPage (25%% capacity)\n",
                level - 1, level, (pec / prev_pec - 1.0) * 100.0);
    prev_pec = pec;
  }
}

}  // namespace
}  // namespace salamander

int main() {
  using namespace salamander;
  bench::PrintHeader(
      "Figure 2 — tiredness level vs PEC benefit",
      "L1 extends page lifetime by ~50% at 25% capacity cost; returns "
      "diminish, so RegenS should limit itself to L < 2");

  bench::PrintSection("paper running example: 16 KiB fPage, 2 KiB spare [13]");
  FPageEccGeometry paper_geometry;
  PrintLadder(paper_geometry, /*nominal_pec=*/3000);

  // §4.2 notes smaller fPages; show the ladder shape is geometry-robust.
  bench::PrintSection("ablation: 8 KiB fPage (2 oPages), 1 KiB spare");
  FPageEccGeometry small_geometry;
  small_geometry.opages_per_fpage = 2;
  small_geometry.spare_bytes = 1024;
  PrintLadder(small_geometry, /*nominal_pec=*/3000);

  bench::PrintSection("ablation: 32 KiB fPage (8 oPages), 4 KiB spare");
  FPageEccGeometry large_geometry;
  large_geometry.opages_per_fpage = 8;
  large_geometry.spare_bytes = 4096;
  PrintLadder(large_geometry, /*nominal_pec=*/3000);

  // The L1 benefit depends on the RBER growth exponent: our default 2.7
  // (typical TLC characterization) yields ~+79%; the paper's "+50%" figure
  // corresponds to a steeper exponent (~3.9) or a more conservative ECC
  // capability curve. The diminishing-returns *shape* holds throughout.
  bench::PrintSection("sensitivity: RBER growth exponent b -> L1 PEC benefit");
  std::printf("exponent\tL1_benefit\tL2_benefit\n");
  const auto ladder = ComputeTirednessLadder(paper_geometry);
  for (double exponent : {2.2, 2.7, 3.2, 3.9}) {
    const WearModel wear(WearModel::Calibrate(
        ladder[0].max_tolerable_rber, 3000, exponent));
    const double pec0 = wear.PecAtRber(ladder[0].max_tolerable_rber);
    const double pec1 = wear.PecAtRber(ladder[1].max_tolerable_rber);
    const double pec2 = wear.PecAtRber(ladder[2].max_tolerable_rber);
    std::printf("%.1f\t%+.1f%%\t%+.1f%%\n", exponent,
                (pec1 / pec0 - 1.0) * 100.0, (pec2 / pec0 - 1.0) * 100.0);
  }
  return 0;
}
