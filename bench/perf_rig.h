// Shared measurement rig for Fig. 3c (sequential throughput) and Fig. 3d
// (large-access latency): ages a RegenS device in stages and, at each
// checkpoint, rewrites one mDisk sequentially and measures access costs over
// it, together with the fraction of its data resident on L1 fPages.
#ifndef SALAMANDER_BENCH_PERF_RIG_H_
#define SALAMANDER_BENCH_PERF_RIG_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "ecc/tiredness.h"
#include "flash/wear_model.h"
#include "ssd/ssd_device.h"
#include "workload/aging.h"

namespace salamander {
namespace bench {

struct PerfSample {
  double l1_fraction = 0.0;       // fraction of measured data on L1 pages
  double seq_mib_per_s = 0.0;     // sequential 16 KiB-access throughput
  double rand16k_latency_us = 0.0;  // mean random 16 KiB read latency
  double rand4k_latency_us = 0.0;   // mean random 4 KiB read latency
  uint64_t host_writes = 0;       // aging progress when sampled
};

struct PerfRigConfig {
  uint32_t nominal_pec = 60;
  uint64_t msize_opages = 256;  // 1 MiB mDisks
  uint32_t checkpoints = 40;
  uint64_t writes_per_stage = 25000;
  uint64_t seed = 7;
  // ECC placement for tired pages (§4.2): inline repurposed oPages (the
  // base design) or dedicated parity pages (the paper's mitigation).
  EccPlacement ecc_placement = EccPlacement::kInline;
  double ecc_cache_hit = 0.9;
};

class PerfRig {
 public:
  explicit PerfRig(const PerfRigConfig& config)
      : config_(config), rng_(config.seed * 31) {
    FPageEccGeometry ecc;
    SsdConfig ssd_config = MakeSsdConfig(
        SsdKind::kRegenS, FlashGeometry::Small(),
        WearModel::Calibrate(
            ComputeTirednessLevel(ecc, 0).max_tolerable_rber,
            config.nominal_pec),
        FlashLatencyConfig{}, ecc, config.seed, /*regen_max_level=*/1);
    ssd_config.minidisk.msize_opages = config.msize_opages;
    ssd_config.ftl.ecc_placement = config.ecc_placement;
    ssd_config.ftl.dedicated_ecc_cache_hit = config.ecc_cache_hit;
    device_ = std::make_unique<SsdDevice>(SsdKind::kRegenS, ssd_config);
    driver_ = std::make_unique<AgingDriver>(device_.get(), config.seed + 1);
  }

  // Runs the staged aging + measurement; returns one sample per checkpoint
  // (stops early if the device dies).
  std::vector<PerfSample> Run() {
    std::vector<PerfSample> samples;
    samples.push_back(Measure());
    for (uint32_t stage = 1; stage < config_.checkpoints; ++stage) {
      AgingResult result = driver_->WriteOPages(config_.writes_per_stage);
      if (result.device_failed || driver_->tracker().empty()) {
        break;
      }
      samples.push_back(Measure());
    }
    return samples;
  }

  // Telemetry scrape target (see SsdDevice::CollectMetrics).
  const SsdDevice& device() const { return *device_; }

 private:
  PerfSample Measure() {
    PerfSample sample;
    sample.host_writes = device_->ftl().stats().host_writes;
    if (driver_->tracker().empty()) {
      return sample;
    }
    const MinidiskId target = driver_->tracker().live().front();
    const uint64_t msize = device_->msize_opages();
    // Drain leftovers from the aging stream first so the sequential rewrite
    // starts on an fPage boundary (otherwise its packing phase shifts and
    // every "aligned" 16 KiB access straddles two fPages even at L0).
    if (!device_->Flush().ok()) {
      return sample;
    }
    // Fresh sequential write so physical layout reflects the current
    // L0/L1 page mix in service.
    for (uint64_t lba = 0; lba < msize; ++lba) {
      if (!device_->Write(target, lba).ok()) {
        return sample;  // target died mid-measurement; sample is partial
      }
    }
    if (!device_->Flush().ok()) {
      return sample;
    }
    // The mDisk may have been decommissioned by the wear of the rewrite.
    if (!device_->IsMinidiskLive(target)) {
      return sample;
    }

    // Measured L1 residency of the region.
    const Minidisk& md = device_->manager().minidisk(target);
    uint64_t on_l1 = 0;
    uint64_t counted = 0;
    for (uint64_t lba = 0; lba < msize; ++lba) {
      const uint64_t slot = device_->ftl().PhysicalSlot(md.first_lpo + lba);
      if (slot == Ftl::kUnmappedSlot) {
        continue;  // still buffered
      }
      const FPageIndex fpage =
          device_->ftl().config().geometry.FPageOfSlot(slot);
      on_l1 += device_->ftl().PageLevel(fpage) >= 1 ? 1 : 0;
      ++counted;
    }
    sample.l1_fraction =
        counted == 0 ? 0.0
                     : static_cast<double>(on_l1) / static_cast<double>(counted);

    // Sequential sweep in 256 KiB streaming accesses: large enough that
    // fPage-boundary straddles amortize, matching the paper's 4/(4-L)
    // model (tiny accesses would re-read boundary pages every call).
    SimDuration seq_total = 0;
    constexpr uint64_t kSeqChunk = 64;
    for (uint64_t lba = 0; lba + kSeqChunk <= msize; lba += kSeqChunk) {
      auto range = device_->ReadRange(target, lba, kSeqChunk);
      if (!range.ok()) {
        return sample;
      }
      seq_total += range->latency;
    }
    const double seq_bytes =
        static_cast<double>(msize / kSeqChunk * kSeqChunk) * 4096.0;
    sample.seq_mib_per_s =
        seq_bytes / (static_cast<double>(seq_total) / 1e9) / (1024.0 * 1024.0);

    // Random 16 KiB and 4 KiB accesses.
    SimDuration rand16_total = 0;
    SimDuration rand4_total = 0;
    constexpr uint32_t kProbes = 400;
    for (uint32_t i = 0; i < kProbes; ++i) {
      const uint64_t lba16 = rng_.UniformU64(msize / 4) * 4;
      auto range = device_->ReadRange(target, lba16, 4);
      if (range.ok()) {
        rand16_total += range->latency;
      }
      auto single = device_->Read(target, rng_.UniformU64(msize));
      if (single.ok()) {
        rand4_total += single->latency;
      }
    }
    sample.rand16k_latency_us =
        static_cast<double>(rand16_total) / kProbes / 1000.0;
    sample.rand4k_latency_us =
        static_cast<double>(rand4_total) / kProbes / 1000.0;
    return sample;
  }

  PerfRigConfig config_;
  Rng rng_;
  std::unique_ptr<SsdDevice> device_;
  std::unique_ptr<AgingDriver> driver_;
};

}  // namespace bench
}  // namespace salamander

#endif  // SALAMANDER_BENCH_PERF_RIG_H_
