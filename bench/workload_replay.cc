// Multi-tenant traffic replayed end-to-end through a storage cluster.
//
// The TrafficEngine emits each simulated day's Zipf-skewed, shaped op
// stream (steady / diurnal / bursty tenants); every op is served by the
// cluster's targeted entry points and its simulated service cost — replica
// or parity fan-out, reconstruction, retry backoff — is recorded. The bench
// prints per-day demand with that day's p99s, the end-to-end latency
// distribution (p50/p95/p99/p999), serial-issue throughput, and per-tenant
// skew, then replays the identical config a second time and diffs the op-
// stream digests: a mismatch means the engine's determinism contract broke.
//
// Flags: --cluster difs|ec (storage backend; default difs),
//        --tenants N, --days N, --ops-per-day X (mean per tenant),
//        --read-fraction F (in [0,1]), --zipf-theta F,
//        --arrival steady|diurnal|bursty|mixed (default mixed),
//        --churn-per-day F (popularity drift), --seed N,
//        --metrics-out PATH (registry JSON export).
// Queueing knobs (all off by default; see DESIGN.md "Queueing & graceful
// degradation"): --queue-depth N (0 disables the layer and keeps every
// output byte-identical), --arrival-interval-us N, --hedge-threshold-us N,
// --slo-p99-us N, --brownout-window-ops N, --retry-jitter-us N. With the
// layer on, queue-wait p50/p99/p999 are reported separately from the
// service cost they are folded into.
// Emits BENCH_workload.json (cwd) with the summary numbers.
#include <cstdio>
#include <string>

#include "bench/bench_util.h"
#include "bench/traffic_rig.h"
#include "telemetry/metrics.h"
#include "workload/traffic.h"

int main(int argc, char** argv) {
  using namespace salamander;
  bench::PrintHeader(
      "workload replay — multi-tenant traffic through a cluster",
      "tenant skew and shaped arrivals drive end-to-end service cost; the "
      "op stream is bit-identical on every replay of the same config");

  bench::TrafficRigConfig config;
  config.cluster = bench::ParseClusterFlag(argc, argv);
  config.tenants = static_cast<uint32_t>(
      bench::ParseU64Flag(argc, argv, "--tenants", 4));
  config.days =
      static_cast<uint32_t>(bench::ParseU64Flag(argc, argv, "--days", 20));
  config.seed = bench::ParseU64Flag(argc, argv, "--seed", 42);
  config.tenant.ops_per_day =
      bench::ParseF64Flag(argc, argv, "--ops-per-day", 400.0);
  config.tenant.read_fraction =
      bench::ParseFractionFlag(argc, argv, "--read-fraction", 0.5);
  config.tenant.zipf_theta =
      bench::ParseF64Flag(argc, argv, "--zipf-theta", 0.99);
  config.tenant.churn_per_day =
      bench::ParseFractionFlag(argc, argv, "--churn-per-day", 0.0);
  const std::string arrival = bench::ParseArrivalFlag(argc, argv);
  config.mixed_arrivals = arrival == "mixed";
  if (arrival == "diurnal") {
    config.tenant.arrival = ArrivalShape::kDiurnal;
  } else if (arrival == "bursty") {
    config.tenant.arrival = ArrivalShape::kBursty;
  }
  const std::string metrics_out =
      bench::ParseStringFlag(argc, argv, "--metrics-out");
  const bench::SchedFlagValues sched_flags =
      bench::ParseSchedFlags(argc, argv);
  config.sched = bench::SchedConfigFromFlags(sched_flags);
  {
    const Status sched_valid = ValidateSchedConfig(config.sched);
    if (!sched_valid.ok()) {
      std::fprintf(stderr, "error: invalid sched config: %s\n",
                   sched_valid.message().c_str());
      return 2;
    }
  }

  {
    TrafficConfig probe = MakeUniformTraffic(config.tenants, config.tenant,
                                             config.seed,
                                             config.mixed_arrivals);
    const Status valid = ValidateTrafficConfig(probe);
    if (!valid.ok()) {
      std::fprintf(stderr, "error: invalid traffic config: %s\n",
                   valid.message().c_str());
      return 2;
    }
  }

  std::printf("cluster=%s tenants=%u days=%u ops_per_day=%g "
              "read_fraction=%g zipf_theta=%g arrival=%s churn=%g seed=%llu\n",
              config.cluster.c_str(), config.tenants, config.days,
              config.tenant.ops_per_day, config.tenant.read_fraction,
              config.tenant.zipf_theta, arrival.c_str(),
              config.tenant.churn_per_day,
              static_cast<unsigned long long>(config.seed));
  if (config.sched.enabled()) {
    std::printf("queue_depth=%llu arrival_interval_us=%llu "
                "hedge_threshold_us=%llu slo_p99_us=%llu "
                "brownout_window_ops=%llu retry_jitter_us=%llu\n",
                static_cast<unsigned long long>(sched_flags.queue_depth),
                static_cast<unsigned long long>(
                    sched_flags.arrival_interval_us),
                static_cast<unsigned long long>(
                    sched_flags.hedge_threshold_us),
                static_cast<unsigned long long>(sched_flags.slo_p99_us),
                static_cast<unsigned long long>(
                    sched_flags.brownout_window_ops),
                static_cast<unsigned long long>(sched_flags.retry_jitter_us));
  }

  bench::TrafficRig rig(config);
  const bench::TrafficRigResult result = rig.Run();
  if (!result.bootstrapped) {
    std::fprintf(stderr, "error: cluster bootstrap failed\n");
    return 1;
  }

  bench::PrintSection("per-day demand (shaped arrivals)");
  std::printf("day\tops\tread_p99_us\twrite_p99_us\n");
  for (const bench::TrafficDayRow& row : result.days) {
    std::printf("%u\t%llu\t%.1f\t%.1f\n", row.day,
                static_cast<unsigned long long>(row.ops),
                static_cast<double>(row.read_p99_ns) / 1000.0,
                static_cast<double>(row.write_p99_ns) / 1000.0);
  }

  bench::PrintSection("end-to-end service cost");
  const auto print_hist = [](const char* name, const LogHistogram& hist) {
    std::printf("%s\tn=%llu\tp50=%.1fus\tp95=%.1fus\tp99=%.1fus\t"
                "p999=%.1fus\tmax=%.1fus\n",
                name, static_cast<unsigned long long>(hist.count()),
                static_cast<double>(hist.P50()) / 1000.0,
                static_cast<double>(hist.P95()) / 1000.0,
                static_cast<double>(hist.P99()) / 1000.0,
                static_cast<double>(hist.P999()) / 1000.0,
                static_cast<double>(hist.max()) / 1000.0);
  };
  print_hist("reads", result.read_ns);
  print_hist("writes", result.write_ns);
  std::printf("serial-issue throughput: %.0f oPage-ops/s "
              "(%llu ops, %llu read errors, %llu write errors)\n",
              bench::TrafficOpsPerSecond(result),
              static_cast<unsigned long long>(result.ops),
              static_cast<unsigned long long>(result.read_errors),
              static_cast<unsigned long long>(result.write_errors));

  if (config.sched.enabled()) {
    bench::PrintSection("queueing & graceful degradation");
    // Queue wait (admission wait + shed-retry backoff) is folded into every
    // served op's service cost above; this is the same surcharge isolated.
    std::printf("queue_wait\tn=%llu\tp50=%.1fus\tp99=%.1fus\tp999=%.1fus\t"
                "max=%.1fus\n",
                static_cast<unsigned long long>(result.queue_wait_ns.count()),
                static_cast<double>(result.queue_wait_ns.P50()) / 1000.0,
                static_cast<double>(result.queue_wait_ns.P99()) / 1000.0,
                static_cast<double>(result.queue_wait_ns.P999()) / 1000.0,
                static_cast<double>(result.queue_wait_ns.max()) / 1000.0);
    std::printf("sheds=%llu wait_total_us=%.1f hedged_reads=%llu "
                "hedge_wins=%llu brownout_entered=%llu brownout_exited=%llu\n",
                static_cast<unsigned long long>(result.sched_sheds),
                static_cast<double>(result.sched_wait_ns) / 1000.0,
                static_cast<unsigned long long>(result.sched_hedged_reads),
                static_cast<unsigned long long>(result.sched_hedge_wins),
                static_cast<unsigned long long>(result.brownout_entered),
                static_cast<unsigned long long>(result.brownout_exited));
  }

  bench::PrintSection("per-tenant skew");
  std::printf("tenant\thot_set_objects\tachieved_skew(top-1%% ranks)\n");
  const TrafficEngine* engine = rig.engine();
  for (uint32_t t = 0; t < engine->tenant_count(); ++t) {
    std::printf("%u\t%llu\t%.3f\n", t,
                static_cast<unsigned long long>(
                    engine->TenantHotSetObjects(t)),
                engine->TenantAchievedSkew(t));
  }

  bench::PrintSection("determinism self-check (second replay, same config)");
  bench::TrafficRig replay_rig(config);
  const bench::TrafficRigResult replay = replay_rig.Run();
  const bool deterministic =
      replay.stream_digest == result.stream_digest && replay.ops == result.ops &&
      replay.sched_wait_ns == result.sched_wait_ns &&
      replay.sched_sheds == result.sched_sheds;
  std::printf("stream_digest=%016llx replay=%016llx identical=%s\n",
              static_cast<unsigned long long>(result.stream_digest),
              static_cast<unsigned long long>(replay.stream_digest),
              deterministic ? "yes" : "NO — BUG");

  FILE* json = std::fopen("BENCH_workload.json", "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_workload.json\n");
    return 1;
  }
  std::fprintf(
      json,
      "{\n"
      "  \"bench\": \"workload_replay\",\n"
      "  \"cluster\": \"%s\",\n"
      "  \"tenants\": %u,\n"
      "  \"days\": %u,\n"
      "  \"arrival\": \"%s\",\n"
      "  \"ops\": %llu,\n"
      "  \"reads\": %llu,\n"
      "  \"writes\": %llu,\n"
      "  \"read_errors\": %llu,\n"
      "  \"write_errors\": %llu,\n"
      "  \"ops_per_second\": %.1f,\n"
      "  \"read_p99_ns\": %llu,\n"
      "  \"read_p999_ns\": %llu,\n"
      "  \"write_p99_ns\": %llu,\n"
      "  \"write_p999_ns\": %llu,\n",
      config.cluster.c_str(), config.tenants, config.days, arrival.c_str(),
      static_cast<unsigned long long>(result.ops),
      static_cast<unsigned long long>(result.reads),
      static_cast<unsigned long long>(result.writes),
      static_cast<unsigned long long>(result.read_errors),
      static_cast<unsigned long long>(result.write_errors),
      bench::TrafficOpsPerSecond(result),
      static_cast<unsigned long long>(result.read_ns.P99()),
      static_cast<unsigned long long>(result.read_ns.P999()),
      static_cast<unsigned long long>(result.write_ns.P99()),
      static_cast<unsigned long long>(result.write_ns.P999()));
  if (config.sched.enabled()) {
    // Gated so a default (queue_depth == 0) run's JSON stays byte-identical
    // to builds without the queueing layer.
    std::fprintf(
        json,
        "  \"queue_depth\": %llu,\n"
        "  \"queue_wait_p50_ns\": %llu,\n"
        "  \"queue_wait_p99_ns\": %llu,\n"
        "  \"queue_wait_p999_ns\": %llu,\n"
        "  \"sched_sheds\": %llu,\n"
        "  \"sched_hedged_reads\": %llu,\n"
        "  \"sched_hedge_wins\": %llu,\n"
        "  \"brownout_entered\": %llu,\n",
        static_cast<unsigned long long>(config.sched.queue_depth),
        static_cast<unsigned long long>(result.queue_wait_ns.P50()),
        static_cast<unsigned long long>(result.queue_wait_ns.P99()),
        static_cast<unsigned long long>(result.queue_wait_ns.P999()),
        static_cast<unsigned long long>(result.sched_sheds),
        static_cast<unsigned long long>(result.sched_hedged_reads),
        static_cast<unsigned long long>(result.sched_hedge_wins),
        static_cast<unsigned long long>(result.brownout_entered));
  }
  std::fprintf(
      json,
      "  \"stream_digest\": \"%016llx\",\n"
      "  \"deterministic\": %s\n"
      "}\n",
      static_cast<unsigned long long>(result.stream_digest),
      deterministic ? "true" : "false");
  std::fclose(json);
  std::printf("\nwrote BENCH_workload.json\n");

  if (!metrics_out.empty()) {
    MetricRegistry registry;
    engine->CollectMetrics(registry);
    if (rig.difs() != nullptr) {
      rig.difs()->CollectMetrics(registry, "difs.");
    } else if (rig.ec() != nullptr) {
      rig.ec()->CollectMetrics(registry, "ec.");
    }
    if (!registry.WriteJsonFile(metrics_out)) {
      std::fprintf(stderr, "cannot write %s\n", metrics_out.c_str());
      return 1;
    }
    std::printf("wrote %s\n", metrics_out.c_str());
  }
  return deterministic ? 0 : 1;
}
