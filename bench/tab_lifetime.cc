// Reproduces the paper's §4 lifetime claims as a table: total host writes
// each device design sustains before failing, normalized to baseline.
//
// Expected ordering and rough factors:
//   baseline < CVSS <= ShrinkS < RegenS,
// with ShrinkS >= +20% over a CVSS-like design's anchor and RegenS adding
// ~up to 1.5x overall ("our analysis indicates that Salamander can extend
// flash lifetime by up to 1.5x").
//
// Also ablates the design decisions DESIGN.md calls out: the victim-
// selection policy at decommission, the RegenS tiredness cap (L < 2 vs
// deeper), and the firmware retirement margin.
#include <array>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/thread_pool.h"
#include "ecc/tiredness.h"
#include "flash/wear_model.h"
#include "ssd/ssd_device.h"
#include "workload/aging.h"

namespace salamander {
namespace {

constexpr uint32_t kNominalPec = 30;
constexpr uint64_t kSeeds[] = {11, 22, 33, 44, 55};

SsdConfig BenchConfig(SsdKind kind, uint64_t seed, unsigned regen_level = 1) {
  FPageEccGeometry ecc;
  SsdConfig config = MakeSsdConfig(
      kind, FlashGeometry::Small(),
      WearModel::Calibrate(ComputeTirednessLevel(ecc, 0).max_tolerable_rber,
                           kNominalPec),
      FlashLatencyConfig{}, ecc, seed, regen_level);
  if (kind == SsdKind::kShrinkS || kind == SsdKind::kRegenS) {
    config.minidisk.msize_opages = 256;
  }
  return config;
}

uint64_t AgeToDeath(SsdDevice& device, uint64_t seed) {
  AgingDriver driver(&device, seed);
  while (!device.failed()) {
    if (driver.WriteOPages(20000).device_failed) {
      break;
    }
  }
  return driver.total_written();
}

// Ages the 5 seed-replicas on the pool (each owns an independent device and
// RNG streams) and sums them in seed order, so the mean is identical for
// every thread count.
uint64_t MeanLifetime(ThreadPool& pool, SsdKind kind, unsigned regen_level = 1,
                      VictimPolicy policy = VictimPolicy::kLeastValid,
                      double retire_margin = 1.0) {
  std::array<uint64_t, std::size(kSeeds)> lifetimes{};
  pool.ParallelFor(std::size(kSeeds), [&](size_t begin, size_t end) {
    for (size_t s = begin; s < end; ++s) {
      const uint64_t seed = kSeeds[s];
      SsdConfig config = BenchConfig(kind, seed, regen_level);
      config.minidisk.victim_policy = policy;
      config.ftl.retire_margin = retire_margin;
      SsdDevice device(kind, config);
      lifetimes[s] = AgeToDeath(device, seed * 13);
    }
  });
  uint64_t total = 0;
  for (uint64_t lifetime : lifetimes) {
    total += lifetime;
  }
  return total / std::size(kSeeds);
}

}  // namespace
}  // namespace salamander

int main(int argc, char** argv) {
  using namespace salamander;
  bench::PrintHeader(
      "Section 4 — device lifetime table",
      "lifetime ordering baseline < CVSS <= ShrinkS < RegenS; Salamander "
      "extends flash lifetime by up to ~1.5x");
  ThreadPool pool(bench::ParseThreads(argc, argv));

  bench::PrintSection("lifetime in host oPage writes (mean of 5 seeds)");
  std::printf("device\tlifetime_writes\tvs_baseline\n");
  const uint64_t baseline = MeanLifetime(pool, SsdKind::kBaseline);
  struct Row {
    const char* name;
    uint64_t writes;
  };
  std::vector<Row> rows = {
      {"baseline", baseline},
      {"cvss", MeanLifetime(pool, SsdKind::kCvss)},
      {"shrinks", MeanLifetime(pool, SsdKind::kShrinkS)},
      {"regens(L<2)", MeanLifetime(pool, SsdKind::kRegenS, 1)},
  };
  for (const Row& row : rows) {
    std::printf("%s\t%llu\t%.2fx\n", row.name,
                static_cast<unsigned long long>(row.writes),
                static_cast<double>(row.writes) /
                    static_cast<double>(baseline));
  }

  bench::PrintSection("ablation: RegenS tiredness cap (paper: L < 2)");
  std::printf("max_level\tlifetime_writes\tvs_L1\n");
  const uint64_t l1 = rows[3].writes;
  for (unsigned level : {1u, 2u, 3u}) {
    const uint64_t writes = level == 1
                                ? l1
                                : MeanLifetime(pool, SsdKind::kRegenS, level);
    std::printf("L<=%u\t%llu\t%.2fx\n", level,
                static_cast<unsigned long long>(writes),
                static_cast<double>(writes) / static_cast<double>(l1));
  }

  bench::PrintSection("ablation: victim mDisk selection policy (ShrinkS)");
  std::printf("policy\tlifetime_writes\n");
  for (const auto& [name, policy] :
       {std::pair<const char*, VictimPolicy>{"least-valid",
                                             VictimPolicy::kLeastValid},
        std::pair<const char*, VictimPolicy>{"random", VictimPolicy::kRandom},
        std::pair<const char*, VictimPolicy>{"lowest-id",
                                             VictimPolicy::kLowestId}}) {
    std::printf("%s\t%llu\n", name,
                static_cast<unsigned long long>(
                    MeanLifetime(pool, SsdKind::kShrinkS, 1, policy)));
  }

  bench::PrintSection("ablation: firmware retirement margin (RegenS)");
  std::printf("margin\tlifetime_writes\n");
  for (double margin : {0.5, 0.8, 1.0}) {
    std::printf("%.1f\t%llu\n", margin,
                static_cast<unsigned long long>(
                    MeanLifetime(pool, SsdKind::kRegenS, 1,
                                 VictimPolicy::kLeastValid, margin)));
  }
  return 0;
}
