// Reproduces Fig. 4: CO2e reduction in different system configurations
// (Eq. 3, §4.1).
//
// Four bars: {ShrinkS, RegenS} x {current grid, renewable energy}. The
// paper's headline: 3-8% savings today, 11-20% once renewables offset
// operational carbon. A sensitivity sweep over the operational fraction and
// the power-effectiveness penalty shows when the trade flips.
#include <cstdio>

#include "bench/bench_util.h"
#include "sustain/carbon_model.h"

int main() {
  using namespace salamander;
  bench::PrintHeader(
      "Figure 4 — CO2e reduction by configuration",
      "3-8% savings with today's grid; 11-20% under renewable energy");

  bench::PrintSection("Fig. 4 bars (savings vs baseline deployment)");
  std::printf("config\t\tf_op\tPE\tRu\tsavings\n");
  const CarbonParams shrinks = ShrinkSCarbonParams();
  const CarbonParams regens = RegenSCarbonParams();
  std::printf("ShrinkS/grid\t%.2f\t%.2f\t%.2f\t%.1f%%\n", shrinks.f_op,
              shrinks.pe, shrinks.ru, CarbonSavings(shrinks) * 100.0);
  std::printf("RegenS/grid\t%.2f\t%.2f\t%.2f\t%.1f%%\n", regens.f_op,
              regens.pe, regens.ru, CarbonSavings(regens) * 100.0);
  std::printf("ShrinkS/renew\t0.00\t-\t%.2f\t%.1f%%\n", shrinks.ru,
              CarbonSavingsRenewable(shrinks) * 100.0);
  std::printf("RegenS/renew\t0.00\t-\t%.2f\t%.1f%%\n", regens.ru,
              CarbonSavingsRenewable(regens) * 100.0);

  bench::PrintSection("sensitivity: operational fraction f_op (RegenS)");
  std::printf("f_op\tsavings\n");
  for (double f_op = 0.0; f_op <= 0.81; f_op += 0.1) {
    CarbonParams params = RegenSCarbonParams();
    params.f_op = f_op;
    std::printf("%.1f\t%.1f%%\n", f_op, CarbonSavings(params) * 100.0);
  }

  bench::PrintSection("sensitivity: power-effectiveness penalty PE (RegenS)");
  std::printf("PE\tsavings\n");
  for (double pe = 1.0; pe <= 1.31; pe += 0.05) {
    CarbonParams params = RegenSCarbonParams();
    params.pe = pe;
    std::printf("%.2f\t%+.1f%%\n", pe, CarbonSavings(params) * 100.0);
  }

  bench::PrintSection("sensitivity: lifetime gain -> Ru -> savings");
  std::printf("lifetime_gain\tRu\tgrid_savings\trenewable_savings\n");
  for (double gain = 0.0; gain <= 1.01; gain += 0.1) {
    CarbonParams params;
    params.ru = RuFromLifetimeGain(gain);
    std::printf("%.1f\t%.3f\t%.1f%%\t%.1f%%\n", gain, params.ru,
                CarbonSavings(params) * 100.0,
                CarbonSavingsRenewable(params) * 100.0);
  }
  return 0;
}
