// Reproduces §4.4's cost analysis (Eq. 4): total cost of ownership of a
// Salamander deployment relative to baseline.
//
// Headline: 13% savings for ShrinkS, 25% for RegenS at f_opex = 0.14
// (acquisition-dominated TCO per Seagate [49]); still 6-14% if operational
// costs are half the budget.
#include <cstdio>

#include "bench/bench_util.h"
#include "sustain/tco_model.h"

int main() {
  using namespace salamander;
  bench::PrintHeader(
      "Section 4.4 — TCO savings (Eq. 4)",
      "13% (ShrinkS) / 25% (RegenS) cost savings; 6-14% if opex is half "
      "the budget");

  bench::PrintSection("headline numbers");
  std::printf("mode\tRu\tCRu\trelative_TCO\tsavings\n");
  for (const auto& [name, params] :
       {std::pair<const char*, TcoParams>{"ShrinkS", ShrinkSTcoParams()},
        std::pair<const char*, TcoParams>{"RegenS", RegenSTcoParams()}}) {
    std::printf("%s\t%.3f\t%.3f\t%.3f\t%.1f%%\n", name, params.ru,
                CostUpgradeRate(params), RelativeTco(params),
                TcoSavings(params) * 100.0);
  }

  bench::PrintSection("sensitivity: operational cost fraction f_opex");
  std::printf("f_opex\tShrinkS_savings\tRegenS_savings\n");
  for (double f_opex = 0.0; f_opex <= 0.71; f_opex += 0.1) {
    TcoParams shrinks = ShrinkSTcoParams();
    TcoParams regens = RegenSTcoParams();
    shrinks.f_opex = f_opex;
    regens.f_opex = f_opex;
    std::printf("%.2f\t%.1f%%\t%.1f%%\n", f_opex,
                TcoSavings(shrinks) * 100.0, TcoSavings(regens) * 100.0);
  }

  bench::PrintSection(
      "sensitivity: replacement cost effectiveness CE_new (RegenS)");
  std::printf("CE_new\tsavings\n");
  for (double ce = 0.0; ce <= 1.01; ce += 0.25) {
    TcoParams params = RegenSTcoParams();
    params.ce_new = ce;
    std::printf("%.2f\t%.1f%%\n", ce, TcoSavings(params) * 100.0);
  }

  bench::PrintSection("sensitivity: backfill fraction Cap_new (RegenS)");
  std::printf("Cap_new\tsavings\n");
  for (double cap = 0.0; cap <= 1.01; cap += 0.2) {
    TcoParams params = RegenSTcoParams();
    params.cap_new = cap;
    std::printf("%.2f\t%.1f%%\n", cap, TcoSavings(params) * 100.0);
  }
  return 0;
}
