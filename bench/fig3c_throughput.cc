// Reproduces Fig. 3c: sequential access throughput degrades as fPages
// transition to L1.
//
// Model (§4.2): an L1 fPage yields 3 oPages per flash read instead of 4, so
// with a fraction f of data on L1 pages the amortized flash-read count per
// 16 KiB grows by (1 + f/3) — up to the paper's 4/(4-L) = 4/3 (-25%
// throughput) at f = 1. The measured curve additionally includes channel
// transfer time, which dilutes the penalty slightly.
// Cluster traffic mode (--traffic-tenants N, default 0 = off, output
// byte-identical to the device-only bench): additionally drives N
// Zipf-skewed tenants end-to-end through a replicated diFS cluster and an
// EC cluster and reports the aggregate serial-issue throughput each
// sustains — the cluster-level companion to the device-level curve.
// Queueing knobs (--queue-depth etc., see workload_replay) apply to the
// traffic clusters; disabled by default.
#include <cstdio>
#include <string>

#include "bench/bench_util.h"
#include "bench/perf_rig.h"
#include "bench/traffic_rig.h"
#include "telemetry/metrics.h"

int main(int argc, char** argv) {
  using namespace salamander;
  bench::PrintHeader(
      "Figure 3c — sequential throughput vs fraction of L1 fPages",
      "throughput degrades by up to 4/(4-L) = 1.33x (25%) as pages reach L1");
  const std::string metrics_out =
      bench::ParseStringFlag(argc, argv, "--metrics-out");
  const uint32_t traffic_tenants = static_cast<uint32_t>(
      bench::ParseU64Flag(argc, argv, "--traffic-tenants", 0));
  const uint32_t traffic_days = static_cast<uint32_t>(
      bench::ParseU64Flag(argc, argv, "--traffic-days", 15));
  const bench::SchedFlagValues sched_flags =
      bench::ParseSchedFlags(argc, argv);
  MetricRegistry registry;

  bench::PerfRigConfig config;
  bench::PerfRig rig(config);
  const auto samples = rig.Run();
  if (samples.empty()) {
    std::printf("no samples (device died immediately)\n");
    return 1;
  }
  const double fresh = samples.front().seq_mib_per_s;

  bench::PrintSection("measured (aging RegenS device)");
  std::printf(
      "L1_fraction\tseq_MiB_s\trelative\tanalytic_relative=1/(1+f/3)\n");
  for (const bench::PerfSample& sample : samples) {
    if (sample.seq_mib_per_s == 0.0) {
      continue;
    }
    std::printf("%.3f\t%.1f\t%.3f\t%.3f\n", sample.l1_fraction,
                sample.seq_mib_per_s, sample.seq_mib_per_s / fresh,
                1.0 / (1.0 + sample.l1_fraction / 3.0));
  }

  bench::PrintSection(
      "mitigation (§4.2): dedicated ECC pages, 90% ECC cache hit");
  bench::PerfRigConfig dedicated_config;
  dedicated_config.ecc_placement = EccPlacement::kDedicated;
  bench::PerfRig dedicated_rig(dedicated_config);
  const auto dedicated_samples = dedicated_rig.Run();
  if (!dedicated_samples.empty()) {
    const double dedicated_fresh = dedicated_samples.front().seq_mib_per_s;
    std::printf("L1_fraction\tseq_MiB_s\trelative\n");
    for (const bench::PerfSample& sample : dedicated_samples) {
      if (sample.seq_mib_per_s == 0.0) {
        continue;
      }
      std::printf("%.3f\t%.1f\t%.3f\n", sample.l1_fraction,
                  sample.seq_mib_per_s,
                  sample.seq_mib_per_s / dedicated_fresh);
    }
    std::printf("(dedicated parity pages keep 4 oPages per data page, so\n"
                "sequential throughput stays near baseline; the cost moves\n"
                "to parity-page programs on the write path)\n");
  }

  bench::PrintSection("analytic endpoints");
  std::printf("f=0 (all L0): relative throughput 1.000\n");
  std::printf("f=1 (all L1): flash-read-bound relative throughput %.3f "
              "(paper: 0.75)\n",
              3.0 / 4.0);

  if (traffic_tenants > 0) {
    bench::PrintSection(
        "cluster traffic mode — multi-tenant end-to-end throughput");
    std::printf("cluster\tops\terrors\tops_per_s\n");
    for (const char* cluster : {"difs", "ec"}) {
      bench::TrafficRigConfig traffic_config;
      traffic_config.cluster = cluster;
      traffic_config.tenants = traffic_tenants;
      traffic_config.days = traffic_days;
      traffic_config.sched = bench::SchedConfigFromFlags(sched_flags);
      bench::TrafficRig traffic_rig(traffic_config);
      const bench::TrafficRigResult traffic = traffic_rig.Run();
      if (!traffic.bootstrapped) {
        std::printf("%s\tbootstrap failed\n", cluster);
        continue;
      }
      std::printf("%s\t%llu\t%llu\t%.0f\n", cluster,
                  static_cast<unsigned long long>(traffic.ops),
                  static_cast<unsigned long long>(traffic.read_errors +
                                                  traffic.write_errors),
                  bench::TrafficOpsPerSecond(traffic));
      if (sched_flags.enabled()) {
        std::printf("%s\tsched: sheds=%llu hedged=%llu wins=%llu "
                    "queue_wait_p99=%.1fus\n",
                    cluster,
                    static_cast<unsigned long long>(traffic.sched_sheds),
                    static_cast<unsigned long long>(
                        traffic.sched_hedged_reads),
                    static_cast<unsigned long long>(traffic.sched_hedge_wins),
                    static_cast<double>(traffic.queue_wait_ns.P99()) /
                        1000.0);
      }
      if (!metrics_out.empty() && traffic_rig.engine() != nullptr) {
        traffic_rig.engine()->CollectMetrics(registry,
                                             std::string(cluster) + ".");
      }
    }
    std::printf("(replica fan-out makes diFS writes ~R device writes; EC "
                "pays k+m-cell read-modify-write — throughput is the\n"
                "serial-issue rate over each op's simulated service cost)\n");
  }

  if (!metrics_out.empty()) {
    rig.device().CollectMetrics(registry, "inline.");
    dedicated_rig.device().CollectMetrics(registry, "dedicated.");
    if (!registry.WriteJsonFile(metrics_out)) {
      std::fprintf(stderr, "cannot write %s\n", metrics_out.c_str());
      return 1;
    }
  }
  return 0;
}
