// Microbenchmarks (google-benchmark) for the hot paths a real Salamander
// firmware would run: BCH encode/decode at SSD stripe geometry, binomial
// error sampling, and the FTL write/read path of the simulator itself.
#include <benchmark/benchmark.h>

#include <cstring>
#include <string>
#include <vector>

#include "common/rng.h"
#include "ecc/bch.h"
#include "ftl/ftl.h"
#include "workload/generators.h"
#include "workload/traffic.h"

namespace salamander {
namespace {

void BM_BchEncodeStripe(benchmark::State& state) {
  // ~1 KiB data stripe over GF(2^13), t = 78 (the L0 geometry).
  BchCode code(13, 78);
  Rng rng(1);
  std::vector<uint8_t> data(code.k());
  for (auto& bit : data) {
    bit = static_cast<uint8_t>(rng.NextU64() & 1);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(code.Encode(data));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          (code.k() / 8));
}
BENCHMARK(BM_BchEncodeStripe);

void BM_BchDecodeStripe(benchmark::State& state) {
  BchCode code(13, 78);
  Rng rng(2);
  std::vector<uint8_t> data(code.k());
  for (auto& bit : data) {
    bit = static_cast<uint8_t>(rng.NextU64() & 1);
  }
  const auto clean = code.Encode(data);
  const unsigned errors = static_cast<unsigned>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    auto corrupted = clean;
    for (unsigned e = 0; e < errors; ++e) {
      corrupted[rng.UniformU64(corrupted.size())] ^= 1u;
    }
    state.ResumeTiming();
    auto result = code.Decode(corrupted);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_BchDecodeStripe)->Arg(0)->Arg(8)->Arg(32)->Arg(78);

void BM_BinomialErrorSample(benchmark::State& state) {
  // The flash read path draws Binomial(stripe_bits, rber) per stripe.
  Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.Binomial(9216, 1e-3));
  }
}
BENCHMARK(BM_BinomialErrorSample);

void BM_FtlWritePath(benchmark::State& state) {
  FtlConfig config;
  config.geometry = FlashGeometry::Small();
  config.ecc_geometry = FPageEccGeometry{};
  config.wear = WearModel::Calibrate(1e-2, 1000000);  // wear-free regime
  Ftl ftl(config);
  const uint64_t logical = 4096;
  ftl.ExtendLogicalSpace(logical);
  Rng rng(4);
  for (auto _ : state) {
    auto status = ftl.Write(rng.UniformU64(logical));
    benchmark::DoNotOptimize(status);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_FtlWritePath);

void BM_FtlReadPath(benchmark::State& state) {
  FtlConfig config;
  config.geometry = FlashGeometry::Small();
  config.ecc_geometry = FPageEccGeometry{};
  config.wear = WearModel::Calibrate(1e-2, 1000000);
  Ftl ftl(config);
  const uint64_t logical = 4096;
  ftl.ExtendLogicalSpace(logical);
  for (uint64_t lpo = 0; lpo < logical; ++lpo) {
    if (!ftl.Write(lpo).ok()) {
      state.SkipWithError("setup write failed");
      return;
    }
  }
  Rng rng(5);
  for (auto _ : state) {
    auto result = ftl.Read(rng.UniformU64(logical));
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_FtlReadPath);

void BM_FtlL2pHit(benchmark::State& state) {
  // Bounded L2P map cache, hot path: the DRAM window covers the whole map,
  // so after warm-up every lookup is a cache hit — measures the dispatch
  // overhead the bounded cache adds on top of BM_FtlReadPath.
  FtlConfig config;
  config.geometry = FlashGeometry::Small();
  config.ecc_geometry = FPageEccGeometry{};
  config.wear = WearModel::Calibrate(1e-2, 1000000);
  const uint64_t logical = 4096;
  config.l2p_cache_entries = logical;  // whole map resident: no evictions
  Ftl ftl(config);
  ftl.ExtendLogicalSpace(logical);
  for (uint64_t lpo = 0; lpo < logical; ++lpo) {
    if (!ftl.Write(lpo).ok()) {
      state.SkipWithError("setup write failed");
      return;
    }
  }
  Rng rng(6);
  for (auto _ : state) {
    auto result = ftl.Read(rng.UniformU64(logical));
    benchmark::DoNotOptimize(result);
  }
  if (ftl.l2p_stats().evictions != 0) {
    state.SkipWithError("whole-map cache must never evict");
    return;
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
  state.counters["l2p_hits"] =
      static_cast<double>(ftl.l2p_stats().hits);
}
BENCHMARK(BM_FtlL2pHit);

void BM_FtlL2pMiss(benchmark::State& state) {
  // Bounded L2P map cache, cold path: a one-map-page DRAM window with reads
  // striding across map pages, so nearly every lookup faults a map page in
  // (simulated flash read + eviction) — the worst-case miss cost.
  FtlConfig config;
  config.geometry = FlashGeometry::Small();
  config.ecc_geometry = FPageEccGeometry{};
  config.wear = WearModel::Calibrate(1e-2, 1000000);
  const uint64_t logical = 4096;
  config.l2p_cache_entries = 1;        // rounds up to a single-page window
  config.l2p_entries_per_map_page = 64;  // 64 map pages over the space
  Ftl ftl(config);
  ftl.ExtendLogicalSpace(logical);
  for (uint64_t lpo = 0; lpo < logical; ++lpo) {
    if (!ftl.Write(lpo).ok()) {
      state.SkipWithError("setup write failed");
      return;
    }
  }
  // Stride one entry past the map-page size: consecutive reads always land
  // on different map pages, defeating the single-page window.
  uint64_t lpo = 0;
  for (auto _ : state) {
    auto result = ftl.Read(lpo);
    benchmark::DoNotOptimize(result);
    lpo = (lpo + 65) % logical;
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
  state.counters["l2p_misses"] =
      static_cast<double>(ftl.l2p_stats().misses);
}
BENCHMARK(BM_FtlL2pMiss);

void BM_ZipfNext(benchmark::State& state) {
  // Zipfian rank draw (Gray et al. rejection-free form) at the traffic
  // engine's default skew. Construction amortizes to a zeta-cache lookup;
  // this measures the steady-state per-op draw.
  const uint64_t space = static_cast<uint64_t>(state.range(0));
  ZipfianGenerator zipf(space, 0.99);
  Rng rng(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(zipf.Next(rng));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_ZipfNext)->Arg(1 << 10)->Arg(1 << 16)->Arg(1 << 22);

void BM_TrafficDay(benchmark::State& state) {
  // One simulated day of the multi-tenant traffic engine: per-tenant phase
  // advance, Poisson arrivals, per-op Bernoulli + Zipf + address scatter.
  // Items processed = emitted ops, so the per-op cost is directly visible.
  const uint32_t tenants = static_cast<uint32_t>(state.range(0));
  TenantConfig tenant;
  tenant.ops_per_day = 1000.0;
  tenant.churn_per_day = 0.001;
  TrafficEngine engine(
      MakeUniformTraffic(tenants, tenant, 9, /*mixed_arrivals=*/true),
      /*address_space=*/1 << 20);
  std::vector<TrafficOp> ops;
  uint32_t day = 0;
  uint64_t emitted = 0;
  for (auto _ : state) {
    ops.clear();
    emitted += engine.EmitDay(day++, &ops);
    benchmark::DoNotOptimize(ops.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(emitted));
}
BENCHMARK(BM_TrafficDay)->Arg(1)->Arg(8)->Arg(64);

}  // namespace
}  // namespace salamander

// Custom main instead of BENCHMARK_MAIN(): unless the caller already chose a
// --benchmark_out, results are additionally written to BENCH_micro.json
// (google-benchmark's JSON schema) so CI can collect them as an artifact.
int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  std::string out_flag = "--benchmark_out=BENCH_micro.json";
  std::string format_flag = "--benchmark_out_format=json";
  bool has_out = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--benchmark_out=", 16) == 0) {
      has_out = true;
    }
  }
  if (!has_out) {
    args.push_back(out_flag.data());
    args.push_back(format_flag.data());
  }
  int args_count = static_cast<int>(args.size());
  benchmark::Initialize(&args_count, args.data());
  if (benchmark::ReportUnrecognizedArguments(args_count, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
