// Reproduces Fig. 3b: available fleet capacity over time, baseline vs
// Salamander.
//
// Baseline capacity falls in whole-device cliffs as SSDs brick; Salamander
// capacity degrades smoothly (mDisk-sized steps) and stays above baseline
// for most of the deployment's life, with RegenS holding the most because
// revived pages keep contributing shrunken-but-usable capacity.
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/units.h"
#include "fleet/fleet_sim.h"
#include "telemetry/metrics.h"
#include "telemetry/sampler.h"
#include "telemetry/trace.h"

namespace salamander {
namespace {

FleetConfig BenchFleet(SsdKind kind) {
  FleetConfig config;
  config.kind = kind;
  config.devices = 16;
  // 256 blocks x 16 fPages x 4 oPages = 64 MiB raw: enough blocks that the
  // baseline's 2.5% bad-block budget [14] is ~6 blocks rather than "the
  // first weak block bricks the device".
  config.geometry.channels = 2;
  config.geometry.dies_per_channel = 2;
  config.geometry.planes_per_die = 1;
  config.geometry.blocks_per_plane = 64;
  config.geometry.fpages_per_block = 16;
  config.ecc = FPageEccGeometry{};
  config.wear = WearModel::Calibrate(
      ComputeTirednessLevel(config.ecc, 0).max_tolerable_rber,
      /*nominal_pec=*/640);
  config.msize_opages = 256;
  config.dwpd = 2.0;
  config.dwpd_sigma = 0.25;  // shard imbalance across devices
  config.afr = 0.02;
  config.days = 300;
  config.sample_every_days = 5;
  config.seed = 20250514;  // same batch as fig3a
  return config;
}

}  // namespace
}  // namespace salamander

int main(int argc, char** argv) {
  using namespace salamander;
  bench::PrintHeader(
      "Figure 3b — available capacity over time",
      "baseline capacity drops in whole-device cliffs; Salamander shrinks "
      "gradually and retains capacity longer");
  const unsigned threads = bench::ParseThreads(argc, argv);
  const std::string sched = bench::ParseSchedFlag(argc, argv);
  const std::string metrics_out =
      bench::ParseStringFlag(argc, argv, "--metrics-out");
  const std::string trace_out =
      bench::ParseStringFlag(argc, argv, "--trace-out");

  MetricRegistry registry;
  TraceRecorder trace;
  std::map<SsdKind, std::vector<FleetSnapshot>> runs;
  std::map<SsdKind, FleetSim*> sims;
  // One sampler per kind: FleetSim registers its probe set on each (a shared
  // sampler would register duplicate series names).
  std::map<SsdKind, TimeSeriesSampler> samplers;
  std::vector<std::unique_ptr<FleetSim>> storage;
  uint32_t lane = 0;
  for (SsdKind kind :
       {SsdKind::kBaseline, SsdKind::kShrinkS, SsdKind::kRegenS}) {
    FleetConfig config = BenchFleet(kind);
    config.threads = threads;
    config.scheduler = sched == "lockstep" ? FleetSchedulerMode::kLockstep
                                           : FleetSchedulerMode::kEventDriven;
    config.sampler = &samplers[kind];
    config.trace = &trace;
    config.trace_tid = lane++;
    storage.push_back(std::make_unique<FleetSim>(config));
    runs[kind] = storage.back()->Run();
    sims[kind] = storage.back().get();
    storage.back()->CollectMetrics(registry,
                                   std::string(SsdKindName(kind)) + ".");
  }

  bench::PrintSection("fleet capacity (GiB) by day");
  std::printf("day\tbaseline\tshrinks\tregens\n");
  // Reported from the telemetry time series (sampled once per simulated
  // day): last-known value at the requested day, matching how a fleet
  // dashboard would render the samples.
  const auto value_at = [&samplers](SsdKind kind, uint32_t day) {
    const TimeSeries* series =
        samplers.at(kind).Find("fleet.capacity_bytes");
    double value = 0.0;
    for (const auto& [t, v] : series->points()) {
      if (t > static_cast<double>(day)) {
        break;
      }
      value = v;
    }
    return ToGiB(static_cast<uint64_t>(value));
  };
  for (uint32_t day = 0; day <= 300; day += 5) {
    std::printf("%u\t%.3f\t%.3f\t%.3f\n", day,
                value_at(SsdKind::kBaseline, day),
                value_at(SsdKind::kShrinkS, day),
                value_at(SsdKind::kRegenS, day));
  }

  bench::PrintSection("day fleet capacity first fell below fraction");
  std::printf("fraction\tbaseline\tshrinks\tregens\n");
  const auto day_or_never = [](std::optional<uint32_t> day) {
    return day ? std::to_string(*day) : std::string("never");
  };
  for (double fraction : {0.9, 0.75, 0.5, 0.25}) {
    std::printf(
        "%.2f\t%s\t%s\t%s\n", fraction,
        day_or_never(sims[SsdKind::kBaseline]->DayCapacityBelow(fraction))
            .c_str(),
        day_or_never(sims[SsdKind::kShrinkS]->DayCapacityBelow(fraction))
            .c_str(),
        day_or_never(sims[SsdKind::kRegenS]->DayCapacityBelow(fraction))
            .c_str());
  }

  if (!metrics_out.empty() && !registry.WriteJsonFile(metrics_out)) {
    std::fprintf(stderr, "cannot write %s\n", metrics_out.c_str());
    return 1;
  }
  if (!trace_out.empty() && !trace.WriteJsonFile(trace_out)) {
    std::fprintf(stderr, "cannot write %s\n", trace_out.c_str());
    return 1;
  }
  return 0;
}
