// Reproduces Fig. 3a: number of functioning SSDs over time, baseline vs
// Salamander.
//
// A batch of devices is deployed together and driven at a constant write
// rate. Baseline devices brick abruptly once their bad-block budget is
// exhausted, clustering failures into a narrow window; ShrinkS/RegenS
// devices shed minidisks instead, flattening the failure slope (RegenS most
// of all, since revived L1 pages add endurance).
//
// Scale note: endurance is compressed (small geometry, nominal PEC in the
// tens) so the experiment completes in seconds; the *shape* of the curves is
// what reproduces the figure, not absolute days.
#include <cstdio>
#include <map>
#include <vector>

#include "bench/bench_util.h"
#include "fleet/fleet_sim.h"

namespace salamander {
namespace {

FleetConfig BenchFleet(SsdKind kind) {
  FleetConfig config;
  config.kind = kind;
  config.devices = 16;
  // 256 blocks x 16 fPages x 4 oPages = 64 MiB raw: enough blocks that the
  // baseline's 2.5% bad-block budget [14] is ~6 blocks rather than "the
  // first weak block bricks the device".
  config.geometry.channels = 2;
  config.geometry.dies_per_channel = 2;
  config.geometry.planes_per_die = 1;
  config.geometry.blocks_per_plane = 64;
  config.geometry.fpages_per_block = 16;
  config.ecc = FPageEccGeometry{};
  config.wear = WearModel::Calibrate(
      ComputeTirednessLevel(config.ecc, 0).max_tolerable_rber,
      /*nominal_pec=*/640);
  config.msize_opages = 256;  // 1 MiB mDisks
  config.dwpd = 2.0;
  config.dwpd_sigma = 0.25;  // shard imbalance across devices
  config.afr = 0.02;
  config.days = 300;
  config.sample_every_days = 5;
  config.seed = 20250514;
  return config;
}

}  // namespace
}  // namespace salamander

int main(int argc, char** argv) {
  using namespace salamander;
  bench::PrintHeader(
      "Figure 3a — functioning SSDs over time",
      "baseline devices brick in a narrow window; RegenS flattens the "
      "failure slope (green vs red in the paper)");
  // Snapshot values are identical for any thread count; see DESIGN.md
  // "Threading & determinism".
  const unsigned threads = bench::ParseThreads(argc, argv);

  std::map<SsdKind, std::vector<FleetSnapshot>> runs;
  for (SsdKind kind :
       {SsdKind::kBaseline, SsdKind::kShrinkS, SsdKind::kRegenS}) {
    FleetConfig config = BenchFleet(kind);
    config.threads = threads;
    FleetSim sim(config);
    runs[kind] = sim.Run();
    const std::optional<uint32_t> half_dead = sim.DayDevicesBelow(0.5);
    std::printf("[%s] half-fleet-dead day: %s\n",
                std::string(SsdKindName(kind)).c_str(),
                half_dead ? std::to_string(*half_dead).c_str() : "never");
  }

  bench::PrintSection("functioning devices (of 16) by day");
  std::printf("day\tbaseline\tshrinks\tregens\n");
  // Sample on the union of days using last-known values.
  const auto value_at = [](const std::vector<FleetSnapshot>& snapshots,
                           uint32_t day) {
    uint32_t value = snapshots.front().functioning_devices;
    for (const FleetSnapshot& s : snapshots) {
      if (s.day > day) {
        break;
      }
      value = s.functioning_devices;
    }
    return value;
  };
  for (uint32_t day = 0; day <= 300; day += 5) {
    std::printf("%u\t%u\t%u\t%u\n", day,
                value_at(runs[SsdKind::kBaseline], day),
                value_at(runs[SsdKind::kShrinkS], day),
                value_at(runs[SsdKind::kRegenS], day));
  }

  bench::PrintSection("cumulative mDisk events at horizon");
  for (SsdKind kind :
       {SsdKind::kBaseline, SsdKind::kShrinkS, SsdKind::kRegenS}) {
    const FleetSnapshot& last = runs[kind].back();
    std::printf("%s\tdecommissions=%llu\tregenerations=%llu\n",
                std::string(SsdKindName(kind)).c_str(),
                static_cast<unsigned long long>(last.cumulative_decommissions),
                static_cast<unsigned long long>(
                    last.cumulative_regenerations));
  }
  return 0;
}
