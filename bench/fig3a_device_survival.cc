// Reproduces Fig. 3a: number of functioning SSDs over time, baseline vs
// Salamander.
//
// A batch of devices is deployed together and driven at a constant write
// rate. Baseline devices brick abruptly once their bad-block budget is
// exhausted, clustering failures into a narrow window; ShrinkS/RegenS
// devices shed minidisks instead, flattening the failure slope (RegenS most
// of all, since revived L1 pages add endurance).
//
// Scale note: endurance is compressed (small geometry, nominal PEC in the
// tens) so the experiment completes in seconds; the *shape* of the curves is
// what reproduces the figure, not absolute days.
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "fleet/fleet_sim.h"
#include "telemetry/metrics.h"
#include "telemetry/sampler.h"
#include "telemetry/trace.h"

namespace salamander {
namespace {

FleetConfig BenchFleet(SsdKind kind) {
  FleetConfig config;
  config.kind = kind;
  config.devices = 16;
  // 256 blocks x 16 fPages x 4 oPages = 64 MiB raw: enough blocks that the
  // baseline's 2.5% bad-block budget [14] is ~6 blocks rather than "the
  // first weak block bricks the device".
  config.geometry.channels = 2;
  config.geometry.dies_per_channel = 2;
  config.geometry.planes_per_die = 1;
  config.geometry.blocks_per_plane = 64;
  config.geometry.fpages_per_block = 16;
  config.ecc = FPageEccGeometry{};
  config.wear = WearModel::Calibrate(
      ComputeTirednessLevel(config.ecc, 0).max_tolerable_rber,
      /*nominal_pec=*/640);
  config.msize_opages = 256;  // 1 MiB mDisks
  config.dwpd = 2.0;
  config.dwpd_sigma = 0.25;  // shard imbalance across devices
  config.afr = 0.02;
  config.days = 300;
  config.sample_every_days = 5;
  config.seed = 20250514;
  return config;
}

}  // namespace
}  // namespace salamander

int main(int argc, char** argv) {
  using namespace salamander;
  bench::PrintHeader(
      "Figure 3a — functioning SSDs over time",
      "baseline devices brick in a narrow window; RegenS flattens the "
      "failure slope (green vs red in the paper)");
  // Snapshot values are identical for any thread count and either scheduler
  // engine; see DESIGN.md "Threading & determinism" and "Event-driven fleet
  // core".
  const unsigned threads = bench::ParseThreads(argc, argv);
  const std::string sched = bench::ParseSchedFlag(argc, argv);
  const std::string metrics_out =
      bench::ParseStringFlag(argc, argv, "--metrics-out");
  const std::string trace_out =
      bench::ParseStringFlag(argc, argv, "--trace-out");

  // One registry across the three kinds; each kind's instruments live under
  // its own "<kind>." prefix. The reported numbers below are pulled from
  // here, not recomputed — the registry IS the bench's data source.
  MetricRegistry registry;
  TraceRecorder trace;
  std::map<SsdKind, std::vector<FleetSnapshot>> runs;
  uint32_t lane = 0;
  for (SsdKind kind :
       {SsdKind::kBaseline, SsdKind::kShrinkS, SsdKind::kRegenS}) {
    FleetConfig config = BenchFleet(kind);
    config.threads = threads;
    config.scheduler = sched == "lockstep" ? FleetSchedulerMode::kLockstep
                                           : FleetSchedulerMode::kEventDriven;
    config.trace = &trace;
    config.trace_tid = lane++;
    FleetSim sim(config);
    runs[kind] = sim.Run();
    sim.CollectMetrics(registry, std::string(SsdKindName(kind)) + ".");
    const std::optional<uint32_t> half_dead = sim.DayDevicesBelow(0.5);
    std::printf("[%s] half-fleet-dead day: %s\n",
                std::string(SsdKindName(kind)).c_str(),
                half_dead ? std::to_string(*half_dead).c_str() : "never");
  }

  bench::PrintSection("functioning devices (of 16) by day");
  std::printf("day\tbaseline\tshrinks\tregens\n");
  // Sample on the union of days using last-known values.
  const auto value_at = [](const std::vector<FleetSnapshot>& snapshots,
                           uint32_t day) {
    uint32_t value = snapshots.front().functioning_devices;
    for (const FleetSnapshot& s : snapshots) {
      if (s.day > day) {
        break;
      }
      value = s.functioning_devices;
    }
    return value;
  };
  for (uint32_t day = 0; day <= 300; day += 5) {
    std::printf("%u\t%u\t%u\t%u\n", day,
                value_at(runs[SsdKind::kBaseline], day),
                value_at(runs[SsdKind::kShrinkS], day),
                value_at(runs[SsdKind::kRegenS], day));
  }

  bench::PrintSection("cumulative mDisk events at horizon");
  for (SsdKind kind :
       {SsdKind::kBaseline, SsdKind::kShrinkS, SsdKind::kRegenS}) {
    // Reported straight from the registry: SsdDevice::CollectMetrics is
    // additive, so the per-kind counters are already fleet totals.
    const std::string prefix = std::string(SsdKindName(kind)) + ".";
    const Counter* decommissions =
        registry.FindCounter(prefix + "ssd.decommissioned_total");
    const Counter* regenerations =
        registry.FindCounter(prefix + "ssd.regenerated_total");
    std::printf("%s\tdecommissions=%llu\tregenerations=%llu\n",
                std::string(SsdKindName(kind)).c_str(),
                static_cast<unsigned long long>(
                    decommissions != nullptr ? decommissions->value() : 0),
                static_cast<unsigned long long>(
                    regenerations != nullptr ? regenerations->value() : 0));
  }

  if (!metrics_out.empty() && !registry.WriteJsonFile(metrics_out)) {
    std::fprintf(stderr, "cannot write %s\n", metrics_out.c_str());
    return 1;
  }
  if (!trace_out.empty() && !trace.WriteJsonFile(trace_out)) {
    std::fprintf(stderr, "cannot write %s\n", trace_out.c_str());
    return 1;
  }
  return 0;
}
