// Shared output helpers for the figure/table reproduction benches.
//
// Every bench binary prints a header naming the paper artifact it
// regenerates, then the data rows (tab-separated) so results can be diffed
// or plotted directly.
#ifndef SALAMANDER_BENCH_BENCH_UTIL_H_
#define SALAMANDER_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <string>

namespace salamander {
namespace bench {

inline void PrintHeader(const std::string& artifact,
                        const std::string& claim) {
  std::printf("\n==============================================================\n");
  std::printf("%s\n", artifact.c_str());
  std::printf("paper claim: %s\n", claim.c_str());
  std::printf("==============================================================\n");
}

inline void PrintSection(const std::string& title) {
  std::printf("\n-- %s --\n", title.c_str());
}

}  // namespace bench
}  // namespace salamander

#endif  // SALAMANDER_BENCH_BENCH_UTIL_H_
