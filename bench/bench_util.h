// Shared output helpers for the figure/table reproduction benches.
//
// Every bench binary prints a header naming the paper artifact it
// regenerates, then the data rows (tab-separated) so results can be diffed
// or plotted directly.
#ifndef SALAMANDER_BENCH_BENCH_UTIL_H_
#define SALAMANDER_BENCH_BENCH_UTIL_H_

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

namespace salamander {
namespace bench {

inline void PrintHeader(const std::string& artifact,
                        const std::string& claim) {
  std::printf("\n==============================================================\n");
  std::printf("%s\n", artifact.c_str());
  std::printf("paper claim: %s\n", claim.c_str());
  std::printf("==============================================================\n");
}

inline void PrintSection(const std::string& title) {
  std::printf("\n-- %s --\n", title.c_str());
}

// Parses `--threads N` / `--threads=N` from argv. 0 means "all hardware
// threads"; results of every bench are identical for any value — the knob
// only changes wall-clock.
inline unsigned ParseThreads(int argc, char** argv,
                             unsigned default_threads = 0) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      return static_cast<unsigned>(std::strtoul(argv[i + 1], nullptr, 10));
    }
    if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      return static_cast<unsigned>(std::strtoul(argv[i] + 10, nullptr, 10));
    }
  }
  return default_threads;
}

// Parses `--flag N` / `--flag=N` for a uint64 value.
inline uint64_t ParseU64Flag(int argc, char** argv, const char* flag,
                             uint64_t default_value) {
  const size_t flag_len = std::strlen(flag);
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0 && i + 1 < argc) {
      return std::strtoull(argv[i + 1], nullptr, 10);
    }
    if (std::strncmp(argv[i], flag, flag_len) == 0 &&
        argv[i][flag_len] == '=') {
      return std::strtoull(argv[i] + flag_len + 1, nullptr, 10);
    }
  }
  return default_value;
}

class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}
  double Seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace bench
}  // namespace salamander

#endif  // SALAMANDER_BENCH_BENCH_UTIL_H_
