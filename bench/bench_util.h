// Shared output helpers for the figure/table reproduction benches.
//
// Every bench binary prints a header naming the paper artifact it
// regenerates, then the data rows (tab-separated) so results can be diffed
// or plotted directly.
#ifndef SALAMANDER_BENCH_BENCH_UTIL_H_
#define SALAMANDER_BENCH_BENCH_UTIL_H_

#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

namespace salamander {
namespace bench {

inline void PrintHeader(const std::string& artifact,
                        const std::string& claim) {
  std::printf("\n==============================================================\n");
  std::printf("%s\n", artifact.c_str());
  std::printf("paper claim: %s\n", claim.c_str());
  std::printf("==============================================================\n");
}

inline void PrintSection(const std::string& title) {
  std::printf("\n-- %s --\n", title.c_str());
}

// Finds `--flag VALUE` / `--flag=VALUE` in argv and returns the raw value
// string, or nullptr when the flag is absent. A flag given with no value
// ("--threads" as the last token, or "--threads=") is an error: the bench
// exits with a usage message rather than silently running a default config.
inline const char* ParseFlagValue(int argc, char** argv, const char* flag) {
  const size_t flag_len = std::strlen(flag);
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: %s requires a value\n", flag);
        std::exit(2);
      }
      return argv[i + 1];
    }
    if (std::strncmp(argv[i], flag, flag_len) == 0 &&
        argv[i][flag_len] == '=') {
      const char* value = argv[i] + flag_len + 1;
      if (*value == '\0') {
        std::fprintf(stderr, "error: %s requires a value\n", flag);
        std::exit(2);
      }
      return value;
    }
  }
  return nullptr;
}

// Strictly parses a non-negative integer: the whole token must be decimal
// digits (no signs, no trailing garbage) and fit in a uint64. Exits with a
// clear error naming the flag otherwise — "--threads -3" or
// "--days banana" must not silently become a default.
inline uint64_t ParseU64Value(const char* flag, const char* value) {
  if (*value == '\0') {
    std::fprintf(stderr, "error: %s requires a value\n", flag);
    std::exit(2);
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(value, &end, 10);
  if (*value == '-' || *value == '+' || *end != '\0' || errno == ERANGE) {
    std::fprintf(stderr,
                 "error: %s expects a non-negative integer, got \"%s\"\n",
                 flag, value);
    std::exit(2);
  }
  return static_cast<uint64_t>(parsed);
}

// Parses `--flag N` / `--flag=N` for a uint64 value; rejects garbage,
// negative numbers, and overflow with a clear error.
inline uint64_t ParseU64Flag(int argc, char** argv, const char* flag,
                             uint64_t default_value) {
  const char* value = ParseFlagValue(argc, argv, flag);
  return value == nullptr ? default_value : ParseU64Value(flag, value);
}

// Strictly parses a non-negative finite decimal: the whole token must parse
// (no signs, no trailing garbage, no inf/nan) — same contract as
// ParseU64Value, for probability/rate flags. 0 is a valid value.
inline double ParseF64Value(const char* flag, const char* value) {
  if (*value == '\0') {
    std::fprintf(stderr, "error: %s requires a value\n", flag);
    std::exit(2);
  }
  errno = 0;
  char* end = nullptr;
  const double parsed = std::strtod(value, &end);
  if (*value == '-' || *value == '+' || *end != '\0' || errno == ERANGE ||
      !std::isfinite(parsed)) {
    std::fprintf(stderr,
                 "error: %s expects a non-negative number, got \"%s\"\n",
                 flag, value);
    std::exit(2);
  }
  return parsed;
}

// Parses `--flag X` / `--flag=X` for a non-negative finite double; rejects
// garbage, signs, and overflow with a clear error.
inline double ParseF64Flag(int argc, char** argv, const char* flag,
                           double default_value) {
  const char* value = ParseFlagValue(argc, argv, flag);
  return value == nullptr ? default_value : ParseF64Value(flag, value);
}

// Parses `--scrub-opages-per-day N` / `--scrub-opages-per-day=N`: the
// background-scrub pacing knob shared by the fleet and soak benches. 0 is a
// *valid* value meaning "scrub disabled" (not a usage error — only signs,
// garbage, and overflow exit 2), and it is the default everywhere so that
// scrub-free runs stay byte-identical to builds without the scrubber.
inline uint64_t ParseScrubOPagesPerDay(int argc, char** argv,
                                       uint64_t default_value = 0) {
  return ParseU64Flag(argc, argv, "--scrub-opages-per-day", default_value);
}

// Parses `--l2p-cache-entries N` / `--l2p-cache-entries=N`: the DRAM-bounded
// L2P map cache knob shared by the fleet/soak/crash benches. 0 is a *valid*
// value meaning "legacy unbounded in-DRAM map" (only signs, garbage, and
// overflow exit 2), and it is the default everywhere so cache-free runs stay
// byte-identical to builds without the bounded cache.
inline uint64_t ParseL2pCacheEntries(int argc, char** argv,
                                     uint64_t default_value = 0) {
  return ParseU64Flag(argc, argv, "--l2p-cache-entries", default_value);
}

// Queueing / graceful-degradation knobs shared by the traffic, figure, and
// soak benches (mapped onto sched/queueing.h's SchedConfig by each caller;
// plain integers keep this header dependency-free). All values parse
// strictly — signs, garbage, and overflow exit 2. `--queue-depth 0` (the
// default) disables the whole layer, keeping every pre-existing output
// byte-identical.
struct SchedFlagValues {
  uint64_t queue_depth = 0;          // bounded per-device depth; 0 = off
  uint64_t arrival_interval_us = 8;  // simulated gap between foreground ops
  uint64_t hedge_threshold_us = 0;   // hedge reads past this estimate; 0 = off
  uint64_t slo_p99_us = 0;           // brownout SLO target; 0 = off
  uint64_t brownout_window_ops = 256;
  uint64_t retry_jitter_us = 0;      // deterministic retry jitter; 0 = none

  bool enabled() const { return queue_depth > 0; }
};

// Parses --queue-depth, --arrival-interval-us, --hedge-threshold-us,
// --slo-p99-us, --brownout-window-ops, and --retry-jitter-us.
inline SchedFlagValues ParseSchedFlags(int argc, char** argv) {
  SchedFlagValues values;
  values.queue_depth = ParseU64Flag(argc, argv, "--queue-depth", 0);
  values.arrival_interval_us =
      ParseU64Flag(argc, argv, "--arrival-interval-us", 8);
  values.hedge_threshold_us =
      ParseU64Flag(argc, argv, "--hedge-threshold-us", 0);
  values.slo_p99_us = ParseU64Flag(argc, argv, "--slo-p99-us", 0);
  values.brownout_window_ops =
      ParseU64Flag(argc, argv, "--brownout-window-ops", 256);
  values.retry_jitter_us = ParseU64Flag(argc, argv, "--retry-jitter-us", 0);
  if (values.enabled() && values.arrival_interval_us == 0) {
    std::fprintf(stderr,
                 "error: --queue-depth > 0 requires --arrival-interval-us > 0 "
                 "(the queue needs an arrival clock)\n");
    std::exit(2);
  }
  if (values.enabled() && values.slo_p99_us > 0 &&
      values.brownout_window_ops == 0) {
    std::fprintf(stderr,
                 "error: --slo-p99-us > 0 requires --brownout-window-ops > 0\n");
    std::exit(2);
  }
  return values;
}

// Parses `--service-opages-per-day N` / `--queue-opages N`: the fleet-level
// day-granular admission-control knobs (FleetQueueConfig). 0 service
// capacity — the default — disables the queue, keeping fleet outputs
// byte-identical to builds without it.
inline uint64_t ParseServiceOPagesPerDay(int argc, char** argv,
                                         uint64_t default_value = 0) {
  return ParseU64Flag(argc, argv, "--service-opages-per-day", default_value);
}

inline uint64_t ParseQueueOPages(int argc, char** argv,
                                 uint64_t default_value = 0) {
  return ParseU64Flag(argc, argv, "--queue-opages", default_value);
}

// Parses `--flag X` / `--flag=X` for a probability/fraction: a finite
// decimal in [0, 1]. Garbage, signs, overflow, and out-of-range values all
// exit 2 — "--read-fraction 1.5" must not silently clamp.
inline double ParseFractionFlag(int argc, char** argv, const char* flag,
                                double default_value) {
  const double parsed = ParseF64Flag(argc, argv, flag, default_value);
  if (parsed < 0.0 || parsed > 1.0) {
    std::fprintf(stderr, "error: %s expects a fraction in [0, 1], got %g\n",
                 flag, parsed);
    std::exit(2);
  }
  return parsed;
}

// Failure-domain / batch-cohort / proactive-drain knobs shared by the fleet
// and soak benches (ISSUE 10). Every default is off/zero so domain-free runs
// stay byte-identical to builds without the feature; all values parse
// strictly — signs, garbage, overflow, and out-of-range fractions exit 2.
// Plain values keep this header fleet- and cluster-agnostic; callers map
// them onto FleetDomainConfig or the cluster drain knobs.
struct DomainFlagValues {
  uint64_t devices_per_rack = 0;            // 0 = rack axis off
  double rack_power_loss_per_day = 0.0;     // per rack-day probability
  uint64_t rack_restart_days = 1;
  uint64_t batch_cohorts = 0;               // 0 = cohort axis off
  double batch_endurance_sigma = 0.0;       // lognormal sigma, 0 = off
  double cohort_unavailable_per_day = 0.0;  // per cohort-day probability
  uint64_t cohort_unavailable_days = 1;
  double drain_health_threshold = 0.0;      // 0 = proactive drain off
  double drain_pec_horizon = 0.25;
};

// Parses --devices-per-rack, --rack-power-loss-per-day, --rack-restart-days,
// --batch-cohorts, --batch-endurance-sigma, --cohort-unavailable-per-day,
// --cohort-unavailable-days, --drain-health-threshold, --drain-pec-horizon.
inline DomainFlagValues ParseDomainFlags(int argc, char** argv) {
  DomainFlagValues values;
  values.devices_per_rack =
      ParseU64Flag(argc, argv, "--devices-per-rack", 0);
  values.rack_power_loss_per_day =
      ParseFractionFlag(argc, argv, "--rack-power-loss-per-day", 0.0);
  values.rack_restart_days =
      ParseU64Flag(argc, argv, "--rack-restart-days", 1);
  values.batch_cohorts = ParseU64Flag(argc, argv, "--batch-cohorts", 0);
  values.batch_endurance_sigma =
      ParseF64Flag(argc, argv, "--batch-endurance-sigma", 0.0);
  values.cohort_unavailable_per_day =
      ParseFractionFlag(argc, argv, "--cohort-unavailable-per-day", 0.0);
  values.cohort_unavailable_days =
      ParseU64Flag(argc, argv, "--cohort-unavailable-days", 1);
  values.drain_health_threshold =
      ParseFractionFlag(argc, argv, "--drain-health-threshold", 0.0);
  values.drain_pec_horizon =
      ParseFractionFlag(argc, argv, "--drain-pec-horizon", 0.25);
  return values;
}

// Parses `--threads N` / `--threads=N` from argv. 0 means "all hardware
// threads"; results of every bench are identical for any value — the knob
// only changes wall-clock.
inline unsigned ParseThreads(int argc, char** argv,
                             unsigned default_threads = 0) {
  const uint64_t threads =
      ParseU64Flag(argc, argv, "--threads", default_threads);
  if (threads > 1024) {
    std::fprintf(stderr,
                 "error: --threads expects 0 (all cores) .. 1024, got %llu\n",
                 static_cast<unsigned long long>(threads));
    std::exit(2);
  }
  return static_cast<unsigned>(threads);
}

// Parses `--flag PATH` / `--flag=PATH` for a string value (e.g. the
// `--metrics-out` / `--trace-out` export paths). Empty string when absent.
inline std::string ParseStringFlag(int argc, char** argv, const char* flag,
                                   const std::string& default_value = "") {
  const char* value = ParseFlagValue(argc, argv, flag);
  return value == nullptr ? default_value : std::string(value);
}

// Parses --placement, the cluster placement-policy selector: "uniform" (the
// legacy probe — bit-identical draws to pre-placement builds — and the
// default) or "domain-spread" (never co-locate two replicas/cells of one
// chunk/stripe in the same rack). Anything else exits 2.
inline std::string ParsePlacementFlag(int argc, char** argv,
                                      const std::string& default_policy =
                                          "uniform") {
  const std::string policy =
      ParseStringFlag(argc, argv, "--placement", default_policy);
  if (policy != "uniform" && policy != "domain-spread") {
    std::fprintf(stderr,
                 "error: --placement expects 'uniform' or 'domain-spread', "
                 "got '%s'\n",
                 policy.c_str());
    std::exit(2);
  }
  return policy;
}

// Parses --cluster, the traffic-bench target selector: "difs" (replicated
// chunk cluster, the default) or "ec" (erasure-coded stripes). Anything else
// exits 2.
inline std::string ParseClusterFlag(int argc, char** argv,
                                    const std::string& default_kind = "difs") {
  const std::string kind =
      ParseStringFlag(argc, argv, "--cluster", default_kind);
  if (kind != "difs" && kind != "ec") {
    std::fprintf(stderr, "error: --cluster expects 'difs' or 'ec', got '%s'\n",
                 kind.c_str());
    std::exit(2);
  }
  return kind;
}

// Parses --arrival, the tenant arrival-shape selector: one of "steady",
// "diurnal", "bursty", or "mixed" (rotate shapes across tenants, the
// default). Anything else exits 2. The validated string is mapped onto
// ArrivalShape by the caller, keeping this header workload-agnostic.
inline std::string ParseArrivalFlag(int argc, char** argv,
                                    const std::string& default_shape =
                                        "mixed") {
  const std::string shape =
      ParseStringFlag(argc, argv, "--arrival", default_shape);
  if (shape != "steady" && shape != "diurnal" && shape != "bursty" &&
      shape != "mixed") {
    std::fprintf(stderr,
                 "error: --arrival expects 'steady', 'diurnal', 'bursty', or "
                 "'mixed', got '%s'\n",
                 shape.c_str());
    std::exit(2);
  }
  return shape;
}

// Parses --sched, the fleet engine selector: "event" (discrete-event
// scheduler, the default) or "lockstep" (the per-day reference engine).
// Anything else exits 2. Callers map the validated name onto
// FleetSchedulerMode; the string keeps this header fleet-agnostic.
inline std::string ParseSchedFlag(int argc, char** argv,
                                  const std::string& default_mode = "event") {
  const std::string mode =
      ParseStringFlag(argc, argv, "--sched", default_mode);
  if (mode != "event" && mode != "lockstep") {
    std::fprintf(stderr,
                 "error: --sched expects 'event' or 'lockstep', got '%s'\n",
                 mode.c_str());
    std::exit(2);
  }
  return mode;
}

class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}
  double Seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace bench
}  // namespace salamander

#endif  // SALAMANDER_BENCH_BENCH_UTIL_H_
