// Serial-vs-parallel wall-clock for the fleet simulator (the engine behind
// Fig. 3a/3b), and the determinism cross-check that makes the parallel
// numbers trustworthy: for each device kind the run is executed with
// threads=1 and threads=N and the snapshot vectors must be byte-identical.
//
// Emits BENCH_fleet.json (cwd) with the measured times, the speedup, and
// the machine's hardware concurrency, so results from different machines
// are self-describing.
//
// Flags: --threads N (0 = all hardware threads; default), --devices N,
//        --days N, --power-loss-per-device-day P (transient power-loss
//        probability per device-day; 0 = off, the default, which keeps
//        output byte-identical to builds without the crash-restart path),
//        --power-loss-restart-days N (outage length before Restart()).
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/thread_pool.h"
#include "fleet/fleet_sim.h"
#include "telemetry/metrics.h"

namespace salamander {
namespace {

// Same calibration as fig3a, scaled out to a fleet large enough that
// per-device stepping dominates scheduling overhead.
FleetConfig BenchFleet(SsdKind kind, uint32_t devices, uint32_t days,
                       double power_loss_per_device_day,
                       uint32_t power_loss_restart_days) {
  FleetConfig config;
  config.kind = kind;
  config.devices = devices;
  config.geometry.channels = 2;
  config.geometry.dies_per_channel = 2;
  config.geometry.planes_per_die = 1;
  config.geometry.blocks_per_plane = 64;
  config.geometry.fpages_per_block = 16;
  config.ecc = FPageEccGeometry{};
  config.wear = WearModel::Calibrate(
      ComputeTirednessLevel(config.ecc, 0).max_tolerable_rber,
      /*nominal_pec=*/640);
  config.msize_opages = 256;
  config.dwpd = 2.0;
  config.dwpd_sigma = 0.25;
  config.afr = 0.02;
  config.days = days;
  config.sample_every_days = 5;
  config.seed = 20250514;
  config.power_loss_per_device_day = power_loss_per_device_day;
  config.power_loss_restart_days = power_loss_restart_days;
  return config;
}

struct KindResult {
  std::string kind;
  double serial_seconds = 0.0;
  double parallel_seconds = 0.0;
  bool identical = false;        // snapshot vectors byte-identical
  bool metrics_identical = false;  // registry JSON byte-identical
};

}  // namespace
}  // namespace salamander

int main(int argc, char** argv) {
  using namespace salamander;
  const unsigned requested = bench::ParseThreads(argc, argv);
  const unsigned parallel_threads =
      requested == 0 ? ThreadPool::HardwareThreads() : requested;
  const uint32_t devices = static_cast<uint32_t>(
      bench::ParseU64Flag(argc, argv, "--devices", 128));
  const uint32_t days =
      static_cast<uint32_t>(bench::ParseU64Flag(argc, argv, "--days", 60));
  const double power_loss = bench::ParseF64Flag(
      argc, argv, "--power-loss-per-device-day", 0.0);
  const uint32_t restart_days = static_cast<uint32_t>(
      bench::ParseU64Flag(argc, argv, "--power-loss-restart-days", 1));

  const std::string metrics_out = bench::ParseStringFlag(
      argc, argv, "--metrics-out", "BENCH_fleet_metrics.json");

  bench::PrintHeader(
      "fleet scaling — serial vs parallel FleetSim::Run()",
      "per-device RNG streams make the parallel fleet run bit-identical to "
      "the serial one; threads only buy wall-clock");
  std::printf("devices=%u days=%u threads=1 vs %u (hardware=%u)\n", devices,
              days, parallel_threads, ThreadPool::HardwareThreads());
  if (power_loss > 0.0) {
    std::printf("power_loss_per_device_day=%g restart_days=%u\n", power_loss,
                restart_days);
  }

  std::printf("\nkind\tserial_s\tparallel_s\tspeedup\tidentical\tmetrics\n");
  std::vector<KindResult> results;
  MetricRegistry exported;
  for (SsdKind kind : {SsdKind::kBaseline, SsdKind::kRegenS}) {
    KindResult result;
    result.kind = std::string(SsdKindName(kind));

    // Both runs carry an attached registry: the cross-check below proves
    // telemetry collection is itself bit-identical at any thread count.
    MetricRegistry serial_metrics;
    FleetConfig serial_config =
        BenchFleet(kind, devices, days, power_loss, restart_days);
    serial_config.threads = 1;
    serial_config.metrics = &serial_metrics;
    FleetSim serial_sim(serial_config);
    bench::WallTimer serial_timer;
    const std::vector<FleetSnapshot> serial_snaps = serial_sim.Run();
    result.serial_seconds = serial_timer.Seconds();

    MetricRegistry parallel_metrics;
    FleetConfig parallel_config =
        BenchFleet(kind, devices, days, power_loss, restart_days);
    parallel_config.threads = parallel_threads;
    parallel_config.metrics = &parallel_metrics;
    FleetSim parallel_sim(parallel_config);
    bench::WallTimer parallel_timer;
    const std::vector<FleetSnapshot> parallel_snaps = parallel_sim.Run();
    result.parallel_seconds = parallel_timer.Seconds();

    result.identical = serial_snaps == parallel_snaps;
    result.metrics_identical =
        serial_metrics.ToJson() == parallel_metrics.ToJson();
    std::printf("%s\t%.3f\t%.3f\t%.2fx\t%s\t%s\n", result.kind.c_str(),
                result.serial_seconds, result.parallel_seconds,
                result.serial_seconds / result.parallel_seconds,
                result.identical ? "yes" : "NO — BUG",
                result.metrics_identical ? "yes" : "NO — BUG");
    if (power_loss > 0.0) {
      std::printf("  %s: power_losses=%llu restarts=%llu "
                  "restart_failures=%llu dark_now=%u\n",
                  result.kind.c_str(),
                  static_cast<unsigned long long>(
                      parallel_sim.power_losses_total()),
                  static_cast<unsigned long long>(
                      parallel_sim.restarts_total()),
                  static_cast<unsigned long long>(
                      parallel_sim.restart_failures_total()),
                  parallel_sim.dark_devices());
    }
    // Export under a per-kind prefix so the two fleets stay distinguishable.
    parallel_sim.CollectMetrics(exported, result.kind + ".");
    results.push_back(result);
  }

  FILE* json = std::fopen("BENCH_fleet.json", "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_fleet.json\n");
    return 1;
  }
  std::fprintf(json,
               "{\n"
               "  \"bench\": \"fleet_scaling\",\n"
               "  \"devices\": %u,\n"
               "  \"days\": %u,\n"
               "  \"hardware_concurrency\": %u,\n"
               "  \"parallel_threads\": %u,\n"
               "  \"runs\": [\n",
               devices, days, ThreadPool::HardwareThreads(),
               parallel_threads);
  for (size_t i = 0; i < results.size(); ++i) {
    const KindResult& r = results[i];
    std::fprintf(json,
                 "    {\"kind\": \"%s\", \"serial_seconds\": %.3f, "
                 "\"parallel_seconds\": %.3f, \"speedup\": %.2f, "
                 "\"snapshots_identical\": %s, \"metrics_identical\": %s}%s\n",
                 r.kind.c_str(), r.serial_seconds, r.parallel_seconds,
                 r.serial_seconds / r.parallel_seconds,
                 r.identical ? "true" : "false",
                 r.metrics_identical ? "true" : "false",
                 i + 1 < results.size() ? "," : "");
  }
  std::fprintf(json, "  ]\n}\n");
  std::fclose(json);
  std::printf("\nwrote BENCH_fleet.json\n");

  if (!exported.WriteJsonFile(metrics_out)) {
    std::fprintf(stderr, "cannot write %s\n", metrics_out.c_str());
    return 1;
  }
  std::printf("wrote %s\n", metrics_out.c_str());

  bool all_identical = true;
  for (const KindResult& r : results) {
    all_identical &= r.identical && r.metrics_identical;
  }
  return all_identical ? 0 : 1;
}
