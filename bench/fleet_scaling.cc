// Serial-vs-parallel wall-clock for the fleet simulator (the engine behind
// Fig. 3a/3b), and the determinism cross-checks that make the numbers
// trustworthy: for each device kind the run is executed with threads=1 and
// threads=N and the snapshot vectors and metric dumps must be byte-identical;
// optionally the event-driven engine is also diffed against the lockstep
// reference, snapshot-for-snapshot and per-device digest-for-digest.
//
// Emits BENCH_fleet.json (cwd) with the measured times, the speedup, the
// scheduler's work accounting, and the machine's hardware concurrency, so
// results from different machines are self-describing. When the requested
// thread count exceeds the host's hardware threads the file says
// `"oversubscribed": true` and the speedup is reported as measurement noise,
// not judged — a 1-core host cannot demonstrate parallelism.
//
// Flags: --threads N (0 = all hardware threads; default), --devices N,
//        --days N, --sched event|lockstep (fleet engine; default event),
//        --crosscheck 0|1 (event-vs-lockstep equivalence diff; default 1,
//        pass 0 to skip the slow reference run at datacenter scale),
//        --profile default|datacenter (datacenter = tiny-geometry devices
//        sized for 10k-device multi-year horizons),
//        --power-loss-per-device-day P (transient power-loss probability
//        per device-day; 0 = off, the default, which keeps output
//        byte-identical to builds without the crash-restart path),
//        --power-loss-restart-days N (outage length before Restart()),
//        --traffic-tenants-per-device N (multi-tenant traffic engine as the
//        write-demand source; 0 = off, the default, keeping output
//        byte-identical to flat-dwpd builds),
//        --traffic-ops-per-day X (mean ops per tenant-day),
//        --traffic-read-fraction F (tenant read mix, in [0,1]),
//        --service-opages-per-day N (fleet admission control: daily write
//        service cap per device; 0 = off, the default, keeping output
//        byte-identical to builds without the queue),
//        --queue-opages N (per-device backlog bound; 0 = unbounded, demand
//        past the bound sheds),
//        --devices-per-rack N / --rack-power-loss-per-day P /
//        --rack-restart-days N (correlated rack power-loss events: every
//        device in a rack crashes the same day; 0 devices-per-rack — the
//        default — keeps output byte-identical to pre-domain builds),
//        --batch-cohorts N / --batch-endurance-sigma S /
//        --cohort-unavailable-per-day P / --cohort-unavailable-days N
//        (manufacturing-batch cohort axis: shared endurance variance and
//        correlated unavailability waves),
//        --drain-health-threshold T / --drain-pec-horizon H (proactive
//        health-driven retirement ahead of wear-out; 0 threshold = off).
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/thread_pool.h"
#include "fleet/fleet_sim.h"
#include "telemetry/metrics.h"

namespace salamander {
namespace {

// Same calibration as fig3a, scaled out to a fleet large enough that
// per-device stepping dominates scheduling overhead.
FleetConfig BenchFleet(SsdKind kind, uint32_t devices, uint32_t days,
                       double power_loss_per_device_day,
                       uint32_t power_loss_restart_days) {
  FleetConfig config;
  config.kind = kind;
  config.devices = devices;
  config.geometry.channels = 2;
  config.geometry.dies_per_channel = 2;
  config.geometry.planes_per_die = 1;
  config.geometry.blocks_per_plane = 64;
  config.geometry.fpages_per_block = 16;
  config.ecc = FPageEccGeometry{};
  config.wear = WearModel::Calibrate(
      ComputeTirednessLevel(config.ecc, 0).max_tolerable_rber,
      /*nominal_pec=*/640);
  config.msize_opages = 256;
  config.dwpd = 2.0;
  config.dwpd_sigma = 0.25;
  config.afr = 0.02;
  config.days = days;
  config.sample_every_days = 5;
  config.seed = 20250514;
  config.power_loss_per_device_day = power_loss_per_device_day;
  config.power_loss_restart_days = power_loss_restart_days;
  return config;
}

// Datacenter profile: fig3a-shaped (wear deaths spread over the horizon by
// dwpd_sigma, AFR background) but with the smallest device that still
// exercises the full FTL/mDisk machinery, so 10k devices x multiple
// simulated years fits in minutes. Devices wear out within the first ~year;
// the event scheduler then skips the dead tail that lockstep would keep
// polling — exactly the datacenter regime the paper's economics target.
FleetConfig DatacenterFleet(SsdKind kind, uint32_t devices, uint32_t days,
                            double power_loss_per_device_day,
                            uint32_t power_loss_restart_days) {
  FleetConfig config;
  config.kind = kind;
  config.devices = devices;
  config.geometry.channels = 1;
  config.geometry.dies_per_channel = 1;
  config.geometry.planes_per_die = 1;
  config.geometry.blocks_per_plane = 8;
  config.geometry.fpages_per_block = 8;
  config.ecc = FPageEccGeometry{};
  config.wear = WearModel::Calibrate(
      ComputeTirednessLevel(config.ecc, 0).max_tolerable_rber,
      /*nominal_pec=*/160);
  config.msize_opages = 64;
  config.dwpd = 0.5;
  config.dwpd_sigma = 0.3;
  config.afr = 0.02;
  config.days = days;
  config.sample_every_days = 30;
  config.seed = 20250514;
  config.power_loss_per_device_day = power_loss_per_device_day;
  config.power_loss_restart_days = power_loss_restart_days;
  return config;
}

struct KindResult {
  std::string kind;
  double serial_seconds = 0.0;
  double parallel_seconds = 0.0;
  bool identical = false;          // snapshot vectors byte-identical
  bool metrics_identical = false;  // registry JSON byte-identical
  // Event-vs-lockstep equivalence (only when --crosscheck 1): snapshots,
  // metrics, and every per-device digest agree between the two engines.
  bool crosschecked = false;
  bool lockstep_equivalent = false;
  double lockstep_seconds = 0.0;
  FleetSchedulerStats sched;  // from the parallel event-driven run
  // Failure-domain totals from the parallel run (reported only when the
  // domain axis is on).
  uint64_t rack_crashes = 0;
  uint64_t cohort_pause_days = 0;
  uint32_t drained_devices = 0;
  uint64_t drain_migrated_bytes = 0;
};

}  // namespace
}  // namespace salamander

int main(int argc, char** argv) {
  using namespace salamander;
  const unsigned requested = bench::ParseThreads(argc, argv);
  const unsigned parallel_threads = ThreadPool::ResolveThreads(requested);
  const bool oversubscribed = ThreadPool::Oversubscribed(requested);
  const std::string profile =
      bench::ParseStringFlag(argc, argv, "--profile", "default");
  if (profile != "default" && profile != "datacenter") {
    std::fprintf(stderr,
                 "error: --profile expects 'default' or 'datacenter', "
                 "got '%s'\n",
                 profile.c_str());
    return 2;
  }
  const bool datacenter = profile == "datacenter";
  const uint32_t devices = static_cast<uint32_t>(bench::ParseU64Flag(
      argc, argv, "--devices", datacenter ? 10000 : 128));
  const uint32_t days = static_cast<uint32_t>(
      bench::ParseU64Flag(argc, argv, "--days", datacenter ? 1825 : 60));
  const std::string sched = bench::ParseSchedFlag(argc, argv);
  const FleetSchedulerMode mode = sched == "lockstep"
                                      ? FleetSchedulerMode::kLockstep
                                      : FleetSchedulerMode::kEventDriven;
  const bool crosscheck =
      bench::ParseU64Flag(argc, argv, "--crosscheck", 1) != 0 &&
      mode == FleetSchedulerMode::kEventDriven;
  const double power_loss = bench::ParseF64Flag(
      argc, argv, "--power-loss-per-device-day", 0.0);
  const uint32_t restart_days = static_cast<uint32_t>(
      bench::ParseU64Flag(argc, argv, "--power-loss-restart-days", 1));
  const uint64_t l2p_cache_entries = bench::ParseL2pCacheEntries(argc, argv);
  const uint32_t traffic_tenants = static_cast<uint32_t>(bench::ParseU64Flag(
      argc, argv, "--traffic-tenants-per-device", 0));
  const double traffic_ops_per_day =
      bench::ParseF64Flag(argc, argv, "--traffic-ops-per-day", 200.0);
  const double traffic_read_fraction =
      bench::ParseFractionFlag(argc, argv, "--traffic-read-fraction", 0.5);
  const uint64_t service_opages_per_day =
      bench::ParseServiceOPagesPerDay(argc, argv);
  const uint64_t queue_opages = bench::ParseQueueOPages(argc, argv);
  const bench::DomainFlagValues domain_flags =
      bench::ParseDomainFlags(argc, argv);
  FleetDomainConfig domain;
  domain.devices_per_rack =
      static_cast<uint32_t>(domain_flags.devices_per_rack);
  domain.rack_power_loss_per_day = domain_flags.rack_power_loss_per_day;
  domain.rack_restart_days =
      static_cast<uint32_t>(domain_flags.rack_restart_days);
  domain.batch_cohorts = static_cast<uint32_t>(domain_flags.batch_cohorts);
  domain.batch_endurance_sigma = domain_flags.batch_endurance_sigma;
  domain.cohort_unavailable_per_day =
      domain_flags.cohort_unavailable_per_day;
  domain.cohort_unavailable_days =
      static_cast<uint32_t>(domain_flags.cohort_unavailable_days);
  domain.drain_health_threshold = domain_flags.drain_health_threshold;
  domain.drain_pec_horizon = domain_flags.drain_pec_horizon;

  const std::string metrics_out = bench::ParseStringFlag(
      argc, argv, "--metrics-out", "BENCH_fleet_metrics.json");

  const auto make_config = [&](SsdKind kind) {
    FleetConfig config =
        datacenter ? DatacenterFleet(kind, devices, days, power_loss,
                                     restart_days)
                   : BenchFleet(kind, devices, days, power_loss,
                                restart_days);
    config.l2p_cache_entries = l2p_cache_entries;
    config.traffic.tenants_per_device = traffic_tenants;
    config.traffic.tenant.ops_per_day = traffic_ops_per_day;
    config.traffic.tenant.read_fraction = traffic_read_fraction;
    config.queue.service_opages_per_day = service_opages_per_day;
    config.queue.queue_opages = queue_opages;
    config.domain = domain;
    return config;
  };

  bench::PrintHeader(
      "fleet scaling — serial vs parallel FleetSim::Run()",
      "per-device RNG streams make the parallel fleet run bit-identical to "
      "the serial one; threads only buy wall-clock");
  std::printf("profile=%s sched=%s devices=%u days=%u threads=1 vs %u "
              "(hardware=%u)\n",
              profile.c_str(), sched.c_str(), devices, days, parallel_threads,
              ThreadPool::HardwareThreads());
  if (oversubscribed) {
    std::printf("NOTE: %u threads on %u hardware threads — oversubscribed; "
                "speedup below is scheduler noise, not parallelism, and is "
                "not judged.\n",
                parallel_threads, ThreadPool::HardwareThreads());
  }
  if (power_loss > 0.0) {
    std::printf("power_loss_per_device_day=%g restart_days=%u\n", power_loss,
                restart_days);
  }
  if (l2p_cache_entries > 0) {
    std::printf("l2p_cache_entries=%llu (DRAM-bounded L2P map, paged to "
                "flash with wear accounting)\n",
                static_cast<unsigned long long>(l2p_cache_entries));
  }
  if (service_opages_per_day > 0) {
    std::printf("admission control: service cap %llu oPages/device-day, "
                "backlog bound %llu oPages (0 = unbounded)\n",
                static_cast<unsigned long long>(service_opages_per_day),
                static_cast<unsigned long long>(queue_opages));
  }
  if (traffic_tenants > 0) {
    std::printf("traffic: %u tenants/device, %g ops/tenant-day, "
                "read_fraction=%g (mixed arrivals; write demand replaces "
                "the flat dwpd budget)\n",
                traffic_tenants, traffic_ops_per_day, traffic_read_fraction);
  }
  if (domain.enabled()) {
    std::printf("failure domains: devices_per_rack=%u "
                "rack_power_loss_per_day=%g rack_restart_days=%u "
                "batch_cohorts=%u batch_endurance_sigma=%g "
                "cohort_unavailable_per_day=%g cohort_unavailable_days=%u "
                "drain_health_threshold=%g drain_pec_horizon=%g\n",
                domain.devices_per_rack, domain.rack_power_loss_per_day,
                domain.rack_restart_days, domain.batch_cohorts,
                domain.batch_endurance_sigma,
                domain.cohort_unavailable_per_day,
                domain.cohort_unavailable_days,
                domain.drain_health_threshold, domain.drain_pec_horizon);
  }

  std::printf("\nkind\tserial_s\tparallel_s\tspeedup\tidentical\tmetrics\n");
  std::vector<KindResult> results;
  MetricRegistry exported;
  for (SsdKind kind : {SsdKind::kBaseline, SsdKind::kRegenS}) {
    KindResult result;
    result.kind = std::string(SsdKindName(kind));

    // Both runs carry an attached registry: the cross-check below proves
    // telemetry collection is itself bit-identical at any thread count.
    // Scoped so at most one large fleet is resident alongside the parallel
    // one at datacenter scale.
    MetricRegistry serial_metrics;
    std::vector<FleetSnapshot> serial_snaps;
    std::vector<uint64_t> serial_digests;
    {
      FleetConfig serial_config = make_config(kind);
      serial_config.threads = 1;
      serial_config.scheduler = mode;
      serial_config.metrics = &serial_metrics;
      FleetSim serial_sim(serial_config);
      bench::WallTimer serial_timer;
      serial_snaps = serial_sim.Run();
      result.serial_seconds = serial_timer.Seconds();
      serial_digests = serial_sim.DeviceDigests();
    }

    MetricRegistry parallel_metrics;
    FleetConfig parallel_config = make_config(kind);
    parallel_config.threads = parallel_threads;
    parallel_config.scheduler = mode;
    parallel_config.metrics = &parallel_metrics;
    FleetSim parallel_sim(parallel_config);
    bench::WallTimer parallel_timer;
    const std::vector<FleetSnapshot> parallel_snaps = parallel_sim.Run();
    result.parallel_seconds = parallel_timer.Seconds();
    result.sched = parallel_sim.scheduler_stats();

    result.identical = serial_snaps == parallel_snaps &&
                       serial_digests == parallel_sim.DeviceDigests();
    result.metrics_identical =
        serial_metrics.ToJson() == parallel_metrics.ToJson();
    std::printf("%s\t%.3f\t%.3f\t%.2fx\t%s\t%s\n", result.kind.c_str(),
                result.serial_seconds, result.parallel_seconds,
                result.serial_seconds / result.parallel_seconds,
                result.identical ? "yes" : "NO — BUG",
                result.metrics_identical ? "yes" : "NO — BUG");
    if (mode == FleetSchedulerMode::kEventDriven) {
      const uint64_t device_days =
          static_cast<uint64_t>(devices) * static_cast<uint64_t>(days);
      std::printf("  %s: stepped %llu of %llu device-days "
                  "(%.1f%% skipped as dead/dark), %llu events in %llu "
                  "batches, %llu idle windows\n",
                  result.kind.c_str(),
                  static_cast<unsigned long long>(result.sched.days_stepped),
                  static_cast<unsigned long long>(device_days),
                  device_days == 0
                      ? 0.0
                      : 100.0 *
                            static_cast<double>(device_days -
                                                result.sched.days_stepped) /
                            static_cast<double>(device_days),
                  static_cast<unsigned long long>(result.sched.events),
                  static_cast<unsigned long long>(result.sched.batches),
                  static_cast<unsigned long long>(result.sched.idle_windows));
    }
    if (crosscheck) {
      // Golden diff: the lockstep reference must agree with the event engine
      // on every snapshot, every metric, and every device's final digest.
      MetricRegistry lockstep_metrics;
      FleetConfig lockstep_config = make_config(kind);
      lockstep_config.threads = 1;
      lockstep_config.scheduler = FleetSchedulerMode::kLockstep;
      lockstep_config.metrics = &lockstep_metrics;
      FleetSim lockstep_sim(lockstep_config);
      bench::WallTimer lockstep_timer;
      const std::vector<FleetSnapshot> lockstep_snaps = lockstep_sim.Run();
      result.lockstep_seconds = lockstep_timer.Seconds();
      result.crosschecked = true;
      result.lockstep_equivalent =
          lockstep_snaps == serial_snaps &&
          lockstep_sim.DeviceDigests() == serial_digests;
      std::printf("  %s: lockstep reference %.3fs, event engine %.3fs "
                  "(%.2fx), equivalent=%s\n",
                  result.kind.c_str(), result.lockstep_seconds,
                  result.serial_seconds,
                  result.lockstep_seconds / result.serial_seconds,
                  result.lockstep_equivalent ? "yes" : "NO — BUG");
    }
    if (service_opages_per_day > 0) {
      // Ledger: every admitted oPage is either served or still parked.
      const uint64_t admitted = parallel_sim.queue_admitted_total();
      const uint64_t served = parallel_sim.queue_served_total();
      const uint64_t backlog = parallel_sim.queue_backlog_total();
      std::printf("  %s: queue admitted=%llu served=%llu shed=%llu "
                  "backlog=%llu ledger=%s\n",
                  result.kind.c_str(),
                  static_cast<unsigned long long>(admitted),
                  static_cast<unsigned long long>(served),
                  static_cast<unsigned long long>(
                      parallel_sim.queue_shed_total()),
                  static_cast<unsigned long long>(backlog),
                  admitted == served + backlog ? "ok" : "LEAK — BUG");
    }
    if (power_loss > 0.0) {
      std::printf("  %s: power_losses=%llu restarts=%llu "
                  "restart_failures=%llu dark_now=%u\n",
                  result.kind.c_str(),
                  static_cast<unsigned long long>(
                      parallel_sim.power_losses_total()),
                  static_cast<unsigned long long>(
                      parallel_sim.restarts_total()),
                  static_cast<unsigned long long>(
                      parallel_sim.restart_failures_total()),
                  parallel_sim.dark_devices());
    }
    if (domain.enabled()) {
      result.rack_crashes = parallel_sim.rack_crashes_total();
      result.cohort_pause_days = parallel_sim.cohort_pause_days_total();
      result.drained_devices = parallel_sim.drained_devices();
      result.drain_migrated_bytes = parallel_sim.drain_migrated_bytes_total();
      std::printf("  %s: rack_crashes=%llu cohort_pause_days=%llu "
                  "drained_devices=%u drain_migrated_bytes=%llu\n",
                  result.kind.c_str(),
                  static_cast<unsigned long long>(result.rack_crashes),
                  static_cast<unsigned long long>(result.cohort_pause_days),
                  result.drained_devices,
                  static_cast<unsigned long long>(
                      result.drain_migrated_bytes));
    }
    // Export under a per-kind prefix so the two fleets stay distinguishable.
    parallel_sim.CollectMetrics(exported, result.kind + ".");
    results.push_back(result);
  }

  FILE* json = std::fopen("BENCH_fleet.json", "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_fleet.json\n");
    return 1;
  }
  std::fprintf(json,
               "{\n"
               "  \"bench\": \"fleet_scaling\",\n"
               "  \"profile\": \"%s\",\n"
               "  \"sched\": \"%s\",\n"
               "  \"devices\": %u,\n"
               "  \"days\": %u,\n",
               profile.c_str(), sched.c_str(), devices, days);
  if (l2p_cache_entries > 0) {
    // Emitted only when the bounded cache is on, so default-knob JSON stays
    // byte-identical to pre-cache builds.
    std::fprintf(json, "  \"l2p_cache_entries\": %llu,\n",
                 static_cast<unsigned long long>(l2p_cache_entries));
  }
  if (traffic_tenants > 0) {
    // Same rule as the cache knob: emitted only when the traffic engine is
    // on, so default-knob JSON stays byte-identical to pre-traffic builds.
    std::fprintf(json,
                 "  \"traffic_tenants_per_device\": %u,\n"
                 "  \"traffic_ops_per_day\": %g,\n"
                 "  \"traffic_read_fraction\": %g,\n",
                 traffic_tenants, traffic_ops_per_day,
                 traffic_read_fraction);
  }
  if (service_opages_per_day > 0) {
    // Gated like the l2p/traffic knobs: default-knob JSON stays
    // byte-identical to builds without fleet admission control.
    std::fprintf(json,
                 "  \"service_opages_per_day\": %llu,\n"
                 "  \"queue_opages\": %llu,\n",
                 static_cast<unsigned long long>(service_opages_per_day),
                 static_cast<unsigned long long>(queue_opages));
  }
  if (domain.enabled()) {
    // Gated like the knobs above: default-knob JSON stays byte-identical to
    // builds without failure domains.
    std::fprintf(json,
                 "  \"devices_per_rack\": %u,\n"
                 "  \"rack_power_loss_per_day\": %g,\n"
                 "  \"rack_restart_days\": %u,\n"
                 "  \"batch_cohorts\": %u,\n"
                 "  \"batch_endurance_sigma\": %g,\n"
                 "  \"cohort_unavailable_per_day\": %g,\n"
                 "  \"drain_health_threshold\": %g,\n",
                 domain.devices_per_rack, domain.rack_power_loss_per_day,
                 domain.rack_restart_days, domain.batch_cohorts,
                 domain.batch_endurance_sigma,
                 domain.cohort_unavailable_per_day,
                 domain.drain_health_threshold);
  }
  std::fprintf(json,
               "  \"hardware_concurrency\": %u,\n"
               "  \"parallel_threads\": %u,\n"
               "  \"oversubscribed\": %s,\n"
               "  \"speedup_meaningful\": %s,\n"
               "  \"runs\": [\n",
               ThreadPool::HardwareThreads(), parallel_threads,
               oversubscribed ? "true" : "false",
               oversubscribed ? "false" : "true");
  for (size_t i = 0; i < results.size(); ++i) {
    const KindResult& r = results[i];
    std::fprintf(json,
                 "    {\"kind\": \"%s\", \"serial_seconds\": %.3f, "
                 "\"parallel_seconds\": %.3f, \"speedup\": %.2f, "
                 "\"snapshots_identical\": %s, \"metrics_identical\": %s, "
                 "\"lockstep_equivalent\": %s, \"lockstep_seconds\": %.3f, "
                 "\"device_days_stepped\": %llu, "
                 "\"device_days_total\": %llu, "
                 "\"dark_days_skipped\": %llu, "
                 "\"scheduler_events\": %llu, "
                 "\"scheduler_batches\": %llu, "
                 "\"scheduler_idle_windows\": %llu",
                 r.kind.c_str(), r.serial_seconds, r.parallel_seconds,
                 r.serial_seconds / r.parallel_seconds,
                 r.identical ? "true" : "false",
                 r.metrics_identical ? "true" : "false",
                 r.crosschecked ? (r.lockstep_equivalent ? "true" : "false")
                                : "null",
                 r.lockstep_seconds,
                 static_cast<unsigned long long>(r.sched.days_stepped),
                 static_cast<unsigned long long>(
                     static_cast<uint64_t>(devices) *
                     static_cast<uint64_t>(days)),
                 static_cast<unsigned long long>(r.sched.dark_days_skipped),
                 static_cast<unsigned long long>(r.sched.events),
                 static_cast<unsigned long long>(r.sched.batches),
                 static_cast<unsigned long long>(r.sched.idle_windows));
    if (domain.enabled()) {
      // Per-run domain totals, gated for the same byte-identity reason.
      std::fprintf(json,
                   ", \"rack_crashes\": %llu, \"cohort_pause_days\": %llu, "
                   "\"drained_devices\": %u, \"drain_migrated_bytes\": %llu",
                   static_cast<unsigned long long>(r.rack_crashes),
                   static_cast<unsigned long long>(r.cohort_pause_days),
                   r.drained_devices,
                   static_cast<unsigned long long>(r.drain_migrated_bytes));
    }
    std::fprintf(json, "}%s\n", i + 1 < results.size() ? "," : "");
  }
  std::fprintf(json, "  ]\n}\n");
  std::fclose(json);
  std::printf("\nwrote BENCH_fleet.json\n");

  if (!exported.WriteJsonFile(metrics_out)) {
    std::fprintf(stderr, "cannot write %s\n", metrics_out.c_str());
    return 1;
  }
  std::printf("wrote %s\n", metrics_out.c_str());

  // Pass/fail judges determinism only — identity across thread counts and
  // (when cross-checked) across engines. Speedup is never judged: on an
  // oversubscribed host it is noise by construction, and elsewhere it is a
  // trajectory to track, not a gate.
  bool all_identical = true;
  for (const KindResult& r : results) {
    all_identical &= r.identical && r.metrics_identical;
    if (r.crosschecked) {
      all_identical &= r.lockstep_equivalent;
    }
  }
  return all_identical ? 0 : 1;
}
