// Utilization ablation (§1/§4 context): how space utilization affects the
// lifetime of each design.
//
// The paper positions Salamander against CVSS, whose ~20% lifetime gain
// requires 50% free space in the local file system; Salamander's gain
// "does not hinge on available free space in the host file system" (§4).
// This bench ages each device kind to death under workloads that touch only
// a fraction of the advertised capacity and reports total host writes.
//
// Expectations:
//  * every design gains lifetime at lower utilization (less GC pressure
//    lowers WAF, so fewer physical writes per host write);
//  * the *relative* advantage of ShrinkS/RegenS over baseline holds at every
//    utilization — unlike CVSS-style designs, it does not depend on slack.
#include <array>
#include <cstdio>
#include <string>

#include "bench/bench_util.h"
#include "common/thread_pool.h"
#include "ecc/tiredness.h"
#include "flash/wear_model.h"
#include "ssd/ssd_device.h"
#include "workload/aging.h"

namespace salamander {
namespace {

constexpr uint32_t kNominalPec = 30;

uint64_t LifetimeAtUtilization(SsdKind kind, double working_set,
                               uint64_t seed) {
  FPageEccGeometry ecc;
  SsdConfig config = MakeSsdConfig(
      kind, FlashGeometry::Small(),
      WearModel::Calibrate(ComputeTirednessLevel(ecc, 0).max_tolerable_rber,
                           kNominalPec),
      FlashLatencyConfig{}, ecc, seed);
  if (kind == SsdKind::kShrinkS || kind == SsdKind::kRegenS) {
    config.minidisk.msize_opages = 256;
  }
  SsdDevice device(kind, config);
  AgingConfig aging;
  aging.working_set_fraction = working_set;
  AgingDriver driver(&device, seed * 31, aging);
  while (!device.failed()) {
    if (driver.WriteOPages(20000).device_failed) {
      break;
    }
  }
  return driver.total_written();
}

constexpr uint64_t kSeeds[] = {3, 5, 7};
constexpr SsdKind kKinds[] = {SsdKind::kBaseline, SsdKind::kCvss,
                              SsdKind::kShrinkS, SsdKind::kRegenS};

// Ages the whole 4-kind x 3-seed grid for one utilization point on the pool
// (12 independent devices) and reduces each kind's mean in seed order, so
// the table is identical for every thread count.
std::array<uint64_t, std::size(kKinds)> MeanLifetimes(ThreadPool& pool,
                                                      double working_set) {
  std::array<uint64_t, std::size(kKinds) * std::size(kSeeds)> grid{};
  pool.ParallelFor(grid.size(), [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      const SsdKind kind = kKinds[i / std::size(kSeeds)];
      const uint64_t seed = kSeeds[i % std::size(kSeeds)];
      grid[i] = LifetimeAtUtilization(kind, working_set, seed);
    }
  });
  std::array<uint64_t, std::size(kKinds)> means{};
  for (size_t k = 0; k < std::size(kKinds); ++k) {
    uint64_t total = 0;
    for (size_t s = 0; s < std::size(kSeeds); ++s) {
      total += grid[k * std::size(kSeeds) + s];
    }
    means[k] = total / std::size(kSeeds);
  }
  return means;
}

}  // namespace
}  // namespace salamander

int main(int argc, char** argv) {
  using namespace salamander;
  bench::PrintHeader(
      "utilization ablation — lifetime vs space utilization",
      "Salamander's lifetime gain does not hinge on free space (unlike "
      "CVSS-style shrinking, §4)");
  ThreadPool pool(bench::ParseThreads(argc, argv));

  std::printf("utilization\tbaseline\tcvss\tshrinks\tregens\t"
              "shrinks/baseline\tregens/baseline\n");
  for (double utilization : {1.0, 0.75, 0.5, 0.25}) {
    const auto means = MeanLifetimes(pool, utilization);
    const uint64_t baseline = means[0];
    const uint64_t cvss = means[1];
    const uint64_t shrinks = means[2];
    const uint64_t regens = means[3];
    std::printf("%.2f\t%llu\t%llu\t%llu\t%llu\t%.2fx\t%.2fx\n", utilization,
                static_cast<unsigned long long>(baseline),
                static_cast<unsigned long long>(cvss),
                static_cast<unsigned long long>(shrinks),
                static_cast<unsigned long long>(regens),
                static_cast<double>(shrinks) / static_cast<double>(baseline),
                static_cast<double>(regens) / static_cast<double>(baseline));
  }

  bench::PrintSection("interpretation");
  std::printf(
      "lower utilization lengthens every design's life (lower WAF), and the\n"
      "Salamander advantage persists across the whole sweep — largest at\n"
      "FULL utilization, exactly the regime where free-space-dependent\n"
      "approaches (CVSS needs 50%% slack for its ~20%% gain) cannot operate.\n");
  return 0;
}
