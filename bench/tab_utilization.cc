// Utilization ablation (§1/§4 context): how space utilization affects the
// lifetime of each design.
//
// The paper positions Salamander against CVSS, whose ~20% lifetime gain
// requires 50% free space in the local file system; Salamander's gain
// "does not hinge on available free space in the host file system" (§4).
// This bench ages each device kind to death under workloads that touch only
// a fraction of the advertised capacity and reports total host writes.
//
// Expectations:
//  * every design gains lifetime at lower utilization (less GC pressure
//    lowers WAF, so fewer physical writes per host write);
//  * the *relative* advantage of ShrinkS/RegenS over baseline holds at every
//    utilization — unlike CVSS-style designs, it does not depend on slack.
#include <cstdio>
#include <string>

#include "bench/bench_util.h"
#include "ecc/tiredness.h"
#include "flash/wear_model.h"
#include "ssd/ssd_device.h"
#include "workload/aging.h"

namespace salamander {
namespace {

constexpr uint32_t kNominalPec = 30;

uint64_t LifetimeAtUtilization(SsdKind kind, double working_set,
                               uint64_t seed) {
  FPageEccGeometry ecc;
  SsdConfig config = MakeSsdConfig(
      kind, FlashGeometry::Small(),
      WearModel::Calibrate(ComputeTirednessLevel(ecc, 0).max_tolerable_rber,
                           kNominalPec),
      FlashLatencyConfig{}, ecc, seed);
  if (kind == SsdKind::kShrinkS || kind == SsdKind::kRegenS) {
    config.minidisk.msize_opages = 256;
  }
  SsdDevice device(kind, config);
  AgingConfig aging;
  aging.working_set_fraction = working_set;
  AgingDriver driver(&device, seed * 31, aging);
  while (!device.failed()) {
    if (driver.WriteOPages(20000).device_failed) {
      break;
    }
  }
  return driver.total_written();
}

uint64_t MeanLifetime(SsdKind kind, double working_set) {
  uint64_t total = 0;
  for (uint64_t seed : {3u, 5u, 7u}) {
    total += LifetimeAtUtilization(kind, working_set, seed);
  }
  return total / 3;
}

}  // namespace
}  // namespace salamander

int main() {
  using namespace salamander;
  bench::PrintHeader(
      "utilization ablation — lifetime vs space utilization",
      "Salamander's lifetime gain does not hinge on free space (unlike "
      "CVSS-style shrinking, §4)");

  std::printf("utilization\tbaseline\tcvss\tshrinks\tregens\t"
              "shrinks/baseline\tregens/baseline\n");
  for (double utilization : {1.0, 0.75, 0.5, 0.25}) {
    const uint64_t baseline = MeanLifetime(SsdKind::kBaseline, utilization);
    const uint64_t cvss = MeanLifetime(SsdKind::kCvss, utilization);
    const uint64_t shrinks = MeanLifetime(SsdKind::kShrinkS, utilization);
    const uint64_t regens = MeanLifetime(SsdKind::kRegenS, utilization);
    std::printf("%.2f\t%llu\t%llu\t%llu\t%llu\t%.2fx\t%.2fx\n", utilization,
                static_cast<unsigned long long>(baseline),
                static_cast<unsigned long long>(cvss),
                static_cast<unsigned long long>(shrinks),
                static_cast<unsigned long long>(regens),
                static_cast<double>(shrinks) / static_cast<double>(baseline),
                static_cast<double>(regens) / static_cast<double>(baseline));
  }

  bench::PrintSection("interpretation");
  std::printf(
      "lower utilization lengthens every design's life (lower WAF), and the\n"
      "Salamander advantage persists across the whole sweep — largest at\n"
      "FULL utilization, exactly the regime where free-space-dependent\n"
      "approaches (CVSS needs 50%% slack for its ~20%% gain) cannot operate.\n");
  return 0;
}
