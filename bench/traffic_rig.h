// Shared harness: multi-tenant traffic driven end-to-end through a storage
// cluster (replicated diFS chunks or erasure-coded stripes).
//
// The rig builds a small cluster, attaches a TrafficEngine whose address
// space is the cluster's logical oPage space, and replays each simulated
// day's op stream through the cluster's targeted entry points
// (WriteChunkAt/ReadChunkAt, WriteLogicalAt/ReadLogicalAt). Every op's
// simulated service cost — replica/parity fan-out, reconstruction,
// transient-retry backoff — lands in read/write LogHistograms, giving the
// end-to-end p50/p95/p99/p999 the figure benches report.
//
// Determinism: the engine's op stream depends only on (seed, tenant id) and
// the cluster consumes its own seeded streams, so two rigs built from the
// same config replay bit-identical op sequences (same StreamDigest) with
// bit-identical service costs. workload_replay runs the rig twice and diffs
// the digests as a self-check.
#ifndef SALAMANDER_BENCH_TRAFFIC_RIG_H_
#define SALAMANDER_BENCH_TRAFFIC_RIG_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/histogram.h"
#include "common/units.h"
#include "difs/cluster.h"
#include "difs/ec_cluster.h"
#include "sched/queueing.h"
#include "ssd/ssd_device.h"
#include "workload/traffic.h"

namespace salamander {
namespace bench {

// Maps the microsecond-granular CLI knobs (ParseSchedFlags) onto
// SchedConfig's nanosecond fields. Shed-retry policy keeps the library
// defaults; only the knobs the benches expose are plumbed.
inline SchedConfig SchedConfigFromFlags(const SchedFlagValues& flags) {
  SchedConfig sched;
  sched.queue_depth = flags.queue_depth;
  sched.arrival_interval_ns = flags.arrival_interval_us * kMicrosecond;
  sched.hedge_threshold_ns = flags.hedge_threshold_us * kMicrosecond;
  sched.slo_p99_ns = flags.slo_p99_us * kMicrosecond;
  sched.brownout_window_ops = flags.brownout_window_ops;
  sched.retry_jitter_ns = flags.retry_jitter_us * kMicrosecond;
  return sched;
}

struct TrafficRigConfig {
  // "difs" (replicated chunks) or "ec" (RS(k+m) stripes).
  std::string cluster = "difs";
  SsdKind kind = SsdKind::kRegenS;
  uint32_t tenants = 4;
  uint32_t days = 20;
  // Template applied to every tenant (MakeUniformTraffic).
  TenantConfig tenant;
  bool mixed_arrivals = true;
  uint64_t seed = 42;
  // Cluster sizing. Chunk/cell size doubles as the devices' mSize.
  uint32_t nodes = 6;
  uint64_t unit_opages = 64;  // chunk_opages (difs) / cell_opages (ec)
  double fill_fraction = 0.5;
  uint64_t nominal_pec = 640;
  // Per-device queueing / admission control (sched/queueing.h). Disabled by
  // default (queue_depth == 0), which keeps every rig output byte-identical
  // to builds without the layer.
  SchedConfig sched;
};

struct TrafficDayRow {
  uint32_t day = 0;
  uint64_t ops = 0;
  uint64_t read_p99_ns = 0;
  uint64_t write_p99_ns = 0;
};

struct TrafficRigResult {
  bool bootstrapped = false;
  uint64_t ops = 0;
  uint64_t reads = 0;
  uint64_t writes = 0;
  // Ops the cluster could not serve (lost chunk/stripe, giveups). Expected
  // to be 0 on a healthy rig; nonzero means devices wore out mid-replay.
  uint64_t read_errors = 0;
  uint64_t write_errors = 0;
  uint64_t stream_digest = 0;  // TrafficEngine::StreamDigest after replay
  LogHistogram read_ns;
  LogHistogram write_ns;
  uint64_t total_cost_ns = 0;  // sum of every served op's service cost
  std::vector<TrafficDayRow> days;
  // ---- Queueing layer (all zero when SchedConfig is disabled) --------------
  // Per-served-op queue-wait surcharge (wait + retry backoff), recorded
  // separately from the service cost it is folded into above.
  LogHistogram queue_wait_ns;
  uint64_t sched_sheds = 0;        // foreground ops refused after retries
  uint64_t sched_wait_ns = 0;      // cluster's cumulative wait ledger
  uint64_t sched_hedged_reads = 0;
  uint64_t sched_hedge_wins = 0;
  uint64_t brownout_entered = 0;
  uint64_t brownout_exited = 0;
};

// Serial-issue throughput in oPage-ops per simulated second: the rate one
// issuer would sustain replaying the stream back to back.
inline double TrafficOpsPerSecond(const TrafficRigResult& result) {
  if (result.total_cost_ns == 0) {
    return 0.0;
  }
  const uint64_t served =
      result.ops - result.read_errors - result.write_errors;
  return static_cast<double>(served) * 1e9 /
         static_cast<double>(result.total_cost_ns);
}

class TrafficRig {
 public:
  explicit TrafficRig(const TrafficRigConfig& config) : config_(config) {
    const FPageEccGeometry ecc;
    const WearModelConfig wear = WearModel::Calibrate(
        ComputeTirednessLevel(ecc, 0).max_tolerable_rber, config.nominal_pec);
    const auto factory = [&](uint32_t index) {
      SsdConfig ssd_config = MakeSsdConfig(
          config_.kind, FlashGeometry::Small(), wear, FlashLatencyConfig{},
          ecc, config_.seed * 977 + 31 + index * 17);
      ssd_config.minidisk.msize_opages = config_.unit_opages;
      return std::make_unique<SsdDevice>(config_.kind, ssd_config);
    };
    if (config_.cluster == "ec") {
      EcConfig ec;
      ec.nodes = config_.nodes < 6 ? 6 : config_.nodes;
      ec.cell_opages = config_.unit_opages;
      ec.fill_fraction = config_.fill_fraction;
      ec.seed = config_.seed;
      ec.sched = config_.sched;
      ec_ = std::make_unique<EcCluster>(ec, factory);
    } else {
      DifsConfig difs;
      difs.nodes = config_.nodes;
      difs.chunk_opages = config_.unit_opages;
      difs.fill_fraction = config_.fill_fraction;
      difs.seed = config_.seed;
      difs.sched = config_.sched;
      difs_ = std::make_unique<DifsCluster>(difs, factory);
    }
  }

  // Bootstraps the cluster, replays `days` of traffic, returns the totals.
  TrafficRigResult Run() {
    TrafficRigResult result;
    const Status boot = ec_ != nullptr ? ec_->Bootstrap() : difs_->Bootstrap();
    if (!boot.ok()) {
      return result;
    }
    result.bootstrapped = true;
    const uint64_t space =
        ec_ != nullptr ? ec_->logical_opages() : difs_->logical_opages();
    engine_ = std::make_unique<TrafficEngine>(
        MakeUniformTraffic(config_.tenants, config_.tenant, config_.seed,
                           config_.mixed_arrivals),
        space == 0 ? 1 : space);
    TrafficEngine& engine = *engine_;
    std::vector<TrafficOp> ops;
    for (uint32_t day = 0; day < config_.days; ++day) {
      ops.clear();
      engine.EmitDay(day, &ops);
      LogHistogram day_reads;
      LogHistogram day_writes;
      for (const TrafficOp& op : ops) {
        SimDuration cost = 0;
        const uint64_t wait_before =
            config_.sched.enabled() ? SchedWaitNs() : 0;
        const Status status = Apply(op, &cost);
        ++result.ops;
        if (op.is_read) {
          ++result.reads;
        } else {
          ++result.writes;
        }
        if (!status.ok()) {
          // Lost data / exhausted retries: the op was not served, so its
          // (partial) cost is not a service latency — count it as an error.
          (op.is_read ? result.read_errors : result.write_errors) += 1;
          continue;
        }
        if (config_.sched.enabled()) {
          // The cluster folds wait + retry backoff into `cost` and bumps its
          // sched_wait_ns ledger by the same amount, so the delta is exactly
          // this op's queueing surcharge — reported separately from the
          // service cost it is buried in.
          result.queue_wait_ns.Record(SchedWaitNs() - wait_before);
        }
        result.total_cost_ns += cost;
        if (op.is_read) {
          result.read_ns.Record(cost);
          day_reads.Record(cost);
        } else {
          result.write_ns.Record(cost);
          day_writes.Record(cost);
        }
      }
      TrafficDayRow row;
      row.day = day;
      row.ops = ops.size();
      row.read_p99_ns = day_reads.P99();
      row.write_p99_ns = day_writes.P99();
      result.days.push_back(row);
    }
    if (config_.sched.enabled()) {
      if (ec_ != nullptr) {
        const EcStats& s = ec_->stats();
        result.sched_sheds = s.sched_read_sheds + s.sched_write_sheds;
        result.sched_wait_ns = s.sched_wait_ns;
        result.sched_hedged_reads = s.sched_hedged_reads;
        result.sched_hedge_wins = s.sched_hedge_wins;
        if (ec_->brownout() != nullptr) {
          result.brownout_entered = ec_->brownout()->stats().entered;
          result.brownout_exited = ec_->brownout()->stats().exited;
        }
      } else {
        const DifsStats& s = difs_->stats();
        result.sched_sheds = s.sched_read_sheds + s.sched_write_sheds;
        result.sched_wait_ns = s.sched_wait_ns;
        result.sched_hedged_reads = s.sched_hedged_reads;
        result.sched_hedge_wins = s.sched_hedge_wins;
        if (difs_->brownout() != nullptr) {
          result.brownout_entered = difs_->brownout()->stats().entered;
          result.brownout_exited = difs_->brownout()->stats().exited;
        }
      }
    }
    result.stream_digest = engine.StreamDigest();
    return result;
  }

  DifsCluster* difs() { return difs_.get(); }
  EcCluster* ec() { return ec_.get(); }
  // The engine that drove the last Run() (nullptr before the first Run):
  // per-tenant skew and workload.* metric collection outlive the replay.
  const TrafficEngine* engine() const { return engine_.get(); }

 private:
  uint64_t SchedWaitNs() const {
    return ec_ != nullptr ? ec_->stats().sched_wait_ns
                          : difs_->stats().sched_wait_ns;
  }

  Status Apply(const TrafficOp& op, SimDuration* cost) {
    if (ec_ != nullptr) {
      const uint64_t cell = op.address / ec_->cell_opages();
      const StripeId stripe = cell / ec_->data_cells();
      const uint32_t data_cell =
          static_cast<uint32_t>(cell % ec_->data_cells());
      const uint64_t offset = op.address % ec_->cell_opages();
      return op.is_read
                 ? ec_->ReadLogicalAt(stripe, data_cell, offset, cost)
                 : ec_->WriteLogicalAt(stripe, data_cell, offset, cost);
    }
    const ChunkId chunk = op.address / difs_->chunk_opages();
    const uint64_t offset = op.address % difs_->chunk_opages();
    return op.is_read ? difs_->ReadChunkAt(chunk, offset, cost)
                      : difs_->WriteChunkAt(chunk, offset, cost);
  }

  TrafficRigConfig config_;
  std::unique_ptr<DifsCluster> difs_;
  std::unique_ptr<EcCluster> ec_;
  std::unique_ptr<TrafficEngine> engine_;
};

}  // namespace bench
}  // namespace salamander

#endif  // SALAMANDER_BENCH_TRAFFIC_RIG_H_
