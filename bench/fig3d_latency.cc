// Reproduces Fig. 3d: large (16 KiB) random-access latency grows as fPages
// transition to L1, while small (4 KiB) accesses stay flat.
//
// §4.2: "sequential access throughput and large random access latency (e.g.
// 16KB) degrades by a factor of 4/(4-L)... We expect that small, random
// accesses (i.e., 4 KiB pages) will likely have the same latency in baseline
// and RegenS." Note the measured 16 KiB penalty at f=1 exceeds the paper's
// amortized 4/3 factor: a 4-oPage window over 3-oPage pages always straddles
// two fPages, so unaligned large reads see ~2 flash reads. The paper's own
// mitigation (dedicated ECC pages) addresses exactly this; we report the
// honest measured number.
// Cluster traffic mode (--traffic-tenants N, default 0 = off, output
// byte-identical to the device-only bench): additionally drives N
// Zipf-skewed tenants end-to-end through a replicated diFS cluster and an
// EC cluster and reports the p50/p99/p999 of each op's simulated service
// cost — the tail-latency companion to the device-level curve.
// Queueing knobs (--queue-depth etc., see workload_replay) apply to the
// traffic clusters and add a queue_wait row; disabled by default.
#include <cstdio>
#include <string>

#include "bench/bench_util.h"
#include "bench/perf_rig.h"
#include "bench/traffic_rig.h"
#include "telemetry/metrics.h"

int main(int argc, char** argv) {
  using namespace salamander;
  bench::PrintHeader(
      "Figure 3d — random access latency vs fraction of L1 fPages",
      "16 KiB random reads slow by >= 4/(4-L) as pages reach L1; 4 KiB "
      "random reads stay flat");
  const std::string metrics_out =
      bench::ParseStringFlag(argc, argv, "--metrics-out");
  const uint32_t traffic_tenants = static_cast<uint32_t>(
      bench::ParseU64Flag(argc, argv, "--traffic-tenants", 0));
  const uint32_t traffic_days = static_cast<uint32_t>(
      bench::ParseU64Flag(argc, argv, "--traffic-days", 15));
  const bench::SchedFlagValues sched_flags =
      bench::ParseSchedFlags(argc, argv);
  MetricRegistry registry;

  bench::PerfRigConfig config;
  config.seed = 11;
  bench::PerfRig rig(config);
  const auto samples = rig.Run();
  if (samples.empty()) {
    std::printf("no samples (device died immediately)\n");
    return 1;
  }
  double fresh16 = 0.0;
  double fresh4 = 0.0;
  for (const bench::PerfSample& sample : samples) {
    if (sample.rand16k_latency_us > 0.0) {
      fresh16 = sample.rand16k_latency_us;
      fresh4 = sample.rand4k_latency_us;
      break;
    }
  }

  bench::PrintSection("measured (aging RegenS device)");
  std::printf(
      "L1_fraction\trand16K_us\trel16K\trand4K_us\trel4K\tanalytic_min_rel16K"
      "\n");
  for (const bench::PerfSample& sample : samples) {
    if (sample.rand16k_latency_us == 0.0) {
      continue;
    }
    std::printf("%.3f\t%.1f\t%.3f\t%.1f\t%.3f\t%.3f\n", sample.l1_fraction,
                sample.rand16k_latency_us,
                sample.rand16k_latency_us / fresh16,
                sample.rand4k_latency_us, sample.rand4k_latency_us / fresh4,
                1.0 + sample.l1_fraction / 3.0);
  }

  bench::PrintSection(
      "mitigation (§4.2): dedicated ECC pages, 90% ECC cache hit");
  bench::PerfRigConfig dedicated_config;
  dedicated_config.seed = 11;
  dedicated_config.ecc_placement = EccPlacement::kDedicated;
  bench::PerfRig dedicated_rig(dedicated_config);
  const auto dedicated_samples = dedicated_rig.Run();
  if (!dedicated_samples.empty()) {
    double base16 = 0.0;
    for (const bench::PerfSample& sample : dedicated_samples) {
      if (sample.rand16k_latency_us > 0.0) {
        base16 = sample.rand16k_latency_us;
        break;
      }
    }
    std::printf("L1_fraction\trand16K_us\trel16K\trand4K_us\n");
    for (const bench::PerfSample& sample : dedicated_samples) {
      if (sample.rand16k_latency_us == 0.0) {
        continue;
      }
      std::printf("%.3f\t%.1f\t%.3f\t%.1f\n", sample.l1_fraction,
                  sample.rand16k_latency_us,
                  sample.rand16k_latency_us / base16,
                  sample.rand4k_latency_us);
    }
    std::printf("(16 KiB accesses hit one data fPage again; only ECC-cache\n"
                "misses add a parity-page read)\n");
  }

  bench::PrintSection("expectations");
  std::printf("4 KiB relative latency should stay ~1.0 at every f\n");
  std::printf("16 KiB relative latency should exceed 1 + f/3 (paper's "
              "amortized bound)\n");

  if (traffic_tenants > 0) {
    bench::PrintSection(
        "cluster traffic mode — multi-tenant end-to-end tail latency");
    std::printf("cluster\top\tn\tp50_us\tp99_us\tp999_us\n");
    for (const char* cluster : {"difs", "ec"}) {
      bench::TrafficRigConfig traffic_config;
      traffic_config.cluster = cluster;
      traffic_config.tenants = traffic_tenants;
      traffic_config.days = traffic_days;
      traffic_config.seed = 11;
      traffic_config.sched = bench::SchedConfigFromFlags(sched_flags);
      bench::TrafficRig traffic_rig(traffic_config);
      const bench::TrafficRigResult traffic = traffic_rig.Run();
      if (!traffic.bootstrapped) {
        std::printf("%s\tbootstrap failed\n", cluster);
        continue;
      }
      const auto row = [&](const char* op, const LogHistogram& hist) {
        std::printf("%s\t%s\t%llu\t%.1f\t%.1f\t%.1f\n", cluster, op,
                    static_cast<unsigned long long>(hist.count()),
                    static_cast<double>(hist.P50()) / 1000.0,
                    static_cast<double>(hist.P99()) / 1000.0,
                    static_cast<double>(hist.P999()) / 1000.0);
      };
      row("read", traffic.read_ns);
      row("write", traffic.write_ns);
      if (sched_flags.enabled()) {
        // The queueing surcharge behind those tails, isolated.
        row("queue_wait", traffic.queue_wait_ns);
      }
      if (!metrics_out.empty() && traffic_rig.engine() != nullptr) {
        traffic_rig.engine()->CollectMetrics(registry,
                                             std::string(cluster) + ".");
      }
    }
    std::printf("(write tails carry the replica/parity fan-out; read tails "
                "show reconstruction and retry backoff)\n");
  }

  if (!metrics_out.empty()) {
    rig.device().CollectMetrics(registry, "inline.");
    dedicated_rig.device().CollectMetrics(registry, "dedicated.");
    if (!registry.WriteJsonFile(metrics_out)) {
      std::fprintf(stderr, "cannot write %s\n", metrics_out.c_str());
      return 1;
    }
  }
  return 0;
}
