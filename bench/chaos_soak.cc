// Chaos soak: hammers diFS clusters with every fault the injector knows —
// flash program/erase failures, silent read corruption, busy planes, event
// drops/duplicates/delays, device crashes mid-drain, node outages, lost
// drain acks — and asserts the robustness contract:
//
//  * zero chunk loss while concurrent failures stay below R;
//  * recovery converges after every burst (no pending backlog left);
//  * cluster invariants hold at every checkpoint;
//  * end-to-end integrity accounting is *exact*: every silently corrupt
//    read the injector produced is observed by the cluster's checksum
//    verification (difs.integrity.detected == faults.injected.read_corrupt,
//    per universe and fleet-wide), and with the background scrubber on
//    (--scrub-opages-per-day > 0) corruption still loses zero chunks;
//  * output is byte-identical across runs and --threads values (each
//    universe owns its devices, injectors, and RNG streams);
//  * with the queueing layer on (--queue-depth > 0), the shed/hedge ledger
//    reconciles exactly: every foreground/recovery/scrub shed the clusters
//    counted appears as a per-device queue giveup, the exported sched.*
//    registry matches the harness sums to the last event, and corruption +
//    power loss + traffic + admission control together still lose zero
//    chunks;
//  * with failure domains on (--nodes-per-rack > 0), a uniform-placement
//    baseline and a domain-spread + criticality-ordered + proactive-drain
//    treatment arm soak the same correlated rack-blackout / cohort-wave
//    schedule; the domain ledger reconciles exactly (injected rack events ==
//    blackouts executed, device restarts == harness restarts), the spread
//    arm loses zero chunks, and with drain on it spends measurably less
//    reactive recovery I/O than the baseline.
//
// Exits nonzero on any violation, so it can run as a CI gate.
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "common/units.h"
#include "difs/cluster.h"
#include "sched/queueing.h"
#include "ecc/tiredness.h"
#include "faults/fault_injector.h"
#include "flash/wear_model.h"
#include "ftl/ftl.h"
#include "integrity/checksum.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace salamander {
namespace {

struct UniverseResult {
  SsdKind kind = SsdKind::kShrinkS;
  DifsStats stats;
  uint64_t chunks = 0;
  uint64_t under_replicated = 0;
  uint64_t parked = 0;
  uint32_t devices_alive = 0;
  uint64_t injected_device_faults = 0;
  uint64_t injected_cluster_faults = 0;
  uint64_t injected_by_site[FaultStats::kSites] = {};
  bool converged = true;
  bool invariants_ok = true;
  std::string first_violation;
  // Power-loss drill accounting (--power-loss-per-burst > 0 only): every
  // injected power loss must end as a restart or a permanent upgrade.
  uint64_t power_losses = 0;
  uint64_t power_restarts = 0;
  uint64_t permanent_upgrades = 0;
  // Thread-confined telemetry, owned by the universe's worker and merged by
  // the coordinator after the barrier, in universe order.
  MetricRegistry registry;
  TraceRecorder trace;
};

// One simulated fault burst = 1000 us of trace time (see DESIGN.md
// "Telemetry").
constexpr uint64_t kTraceUsPerBurst = 1000;

// Per-device fault mix. Crash-mid-drain is drawn on every event poll of a
// draining device, which happens once per device per foreground op — keep it
// tiny or the whole fleet dies mid-soak.
FaultConfig DeviceFaults(uint64_t seed, double power_loss_per_burst) {
  FaultConfig config;
  config.program_fail = 0.01;
  config.erase_fail = 0.01;
  config.read_corrupt = 0.005;
  config.transient_unavailable = 0.002;
  config.event_drop = 0.02;
  config.event_duplicate = 0.02;
  config.event_delay = 0.02;
  config.event_delay_waves_max = 3;
  config.crash_during_drain = 0.00002;
  // Power-loss mode only: the harness draws LosesPower() once per device per
  // burst, and every resulting crash tears the journal tail more often than
  // not. Both stay 0.0 by default, which draws nothing — the fault schedule
  // (and every output byte) of a power-loss-free soak is untouched.
  config.power_loss = power_loss_per_burst;
  if (power_loss_per_burst > 0.0) {
    config.torn_journal_write = 0.6;
  }
  config.seed = seed;
  return config;
}

FaultConfig ClusterFaults(uint64_t seed) {
  FaultConfig config;
  config.node_outage = 0.05;  // per maintenance tick
  config.node_outage_ticks_max = 4;
  config.ack_drain_lost = 0.05;
  config.seed = seed;
  return config;
}

// Writes into `result` (stable storage owned by the coordinator) so the
// cluster's trace pointer stays valid for the whole soak.
void RunUniverse(uint64_t universe, uint64_t base_seed, uint64_t bursts,
                 uint64_t scrub_opages_per_day, double power_loss_per_burst,
                 const SchedConfig& sched, UniverseResult& result) {
  result.kind = (universe % 2 == 0) ? SsdKind::kShrinkS : SsdKind::kRegenS;

  const uint32_t lane = static_cast<uint32_t>(universe);
  result.trace.NameLane(lane, "universe " + std::to_string(universe) + ":" +
                                  std::string(SsdKindName(result.kind)));

  DifsConfig config;
  config.nodes = 6;
  config.devices_per_node = 1;
  config.replication = 3;
  config.chunk_opages = 256;
  config.fill_fraction = 0.45;
  config.seed = base_seed + universe;
  config.faults = std::make_shared<FaultInjector>(
      ClusterFaults(base_seed + universe), /*stream_id=*/universe);
  config.trace = &result.trace;
  config.trace_tid = lane;
  // Power-loss mode: a dark device gets a grace window long enough to span a
  // burst's maintenance ticks, so the same-burst restart reconciles it in
  // place instead of triggering a full re-replication wave.
  if (power_loss_per_burst > 0.0) {
    config.suspect_grace_ticks = 8;
  }
  // Queueing layer: disabled by default (zero queues, zero forked streams),
  // so a queue-free soak stays byte-identical to pre-queueing builds.
  config.sched = sched;

  FPageEccGeometry ecc;
  const WearModelConfig wear = WearModel::Calibrate(
      ComputeTirednessLevel(ecc, 0).max_tolerable_rber, /*nominal_pec=*/40);
  std::vector<std::shared_ptr<FaultInjector>> device_injectors;
  auto factory = [&](uint32_t index) {
    SsdConfig ssd_config =
        MakeSsdConfig(result.kind, FlashGeometry::Small(), wear,
                      FlashLatencyConfig{}, ecc, 5000 + index * 17);
    ssd_config.minidisk.msize_opages = 256;
    ssd_config.minidisk.drain_before_decommission = true;
    ssd_config.minidisk.max_draining = 8;
    ssd_config.faults = std::make_shared<FaultInjector>(
        DeviceFaults(base_seed + universe, power_loss_per_burst),
        /*stream_id=*/universe * 64 + index);
    device_injectors.push_back(ssd_config.faults);
    return std::make_unique<SsdDevice>(result.kind, ssd_config);
  };

  DifsCluster cluster(config, factory);
  const auto note_violation = [&](const std::string& what) {
    if (result.first_violation.empty()) {
      result.first_violation = what;
    }
  };
  if (!cluster.Bootstrap().ok()) {
    result.converged = false;
    note_violation("bootstrap failed");
  }

  constexpr uint64_t kWritesPerBurst = 500;
  constexpr uint64_t kReadsPerBurst = 250;
  for (uint64_t burst = 0; burst < bursts; ++burst) {
    if (cluster.alive_devices() < config.replication + 1) {
      break;  // fleet worn down to the edge; stop before losses are expected
    }
    const uint64_t burst_start_us = burst * kTraceUsPerBurst;
    cluster.set_trace_time_us(burst_start_us);
    result.trace.Span("burst " + std::to_string(burst), "chaos",
                      burst_start_us, kTraceUsPerBurst, lane);
    if (burst == bursts / 2) {
      // Crash drill: brick one device outright (one concurrent whole-device
      // failure < R) and require recovery to re-replicate everything it
      // hosted — through the same lossy event channel as everything else.
      result.trace.Instant("crash_drill", "chaos", burst_start_us, lane);
      cluster.device(static_cast<uint32_t>(universe % config.nodes)).Crash();
    }
    // Power-loss lottery: each functioning device may go dark for the rest
    // of the burst (rack power cut). Most outages are transient — the device
    // restarts, replays its journal, and is reconciled in place before the
    // burst's convergence check — but every 4th turns out fatal, and only
    // while enough devices survive to keep concurrent failures under R.
    std::vector<uint32_t> dark_devices;
    if (power_loss_per_burst > 0.0) {
      for (uint32_t d = 0; d < cluster.device_count(); ++d) {
        if (cluster.device(d).failed() ||
            !device_injectors[d]->LosesPower()) {
          continue;
        }
        ++result.power_losses;
        result.trace.Instant("power_loss", "chaos", burst_start_us, lane);
        cluster.device(d).Crash(SsdDevice::CrashKind::kPowerLoss);
        if (result.power_losses % 4 == 0 &&
            cluster.alive_devices() > config.replication + 1) {
          // The outage turns out fatal: upgrade the dark device to a brick
          // (exercises the mid-window upgrade path).
          cluster.device(d).Crash(SsdDevice::CrashKind::kPermanent);
          ++result.permanent_upgrades;
        } else {
          dark_devices.push_back(d);
        }
      }
    }
    (void)cluster.StepWrites(kWritesPerBurst);
    (void)cluster.StepReads(kReadsPerBurst);
    // Background scrub slice for this "day": walks the deterministic cursor,
    // catches latent corruption foreground reads missed, repairs through the
    // same read-repair path. 0 = disabled, zero extra work.
    (void)cluster.ScrubStep(scrub_opages_per_day);
    // Power restored: every still-dark device restarts (journal replay) so
    // the convergence check below sees the whole fleet reachable. A device
    // the crash drill upgraded meanwhile stays bricked.
    for (uint32_t d : dark_devices) {
      if (!cluster.device(d).transiently_dark()) {
        ++result.permanent_upgrades;
        continue;
      }
      if (cluster.device(d).Restart().ok()) {
        ++result.power_restarts;
      } else {
        result.converged = false;
        note_violation("burst " + std::to_string(burst) +
                       ": post-power-loss restart failed");
      }
    }
    cluster.ForceReconcile();
    result.trace.CounterSample("recovery_backlog",
                               burst_start_us + kTraceUsPerBurst,
                               static_cast<double>(
                                   cluster.pending_recovery_backlog()),
                               lane);
    result.trace.CounterSample(
        "alive_devices", burst_start_us + kTraceUsPerBurst,
        static_cast<double>(cluster.alive_devices()), lane);
    const Status invariants = cluster.CheckInvariants();
    if (!invariants.ok()) {
      result.invariants_ok = false;
      note_violation("burst " + std::to_string(burst) + ": " +
                     invariants.ToString());
    }
    if (cluster.pending_recovery_backlog() != 0) {
      result.converged = false;
      note_violation("burst " + std::to_string(burst) +
                     ": recovery backlog not drained");
    }
  }
  // Let any active outage expire (maintenance ticks fire every 256 ops),
  // then reconcile to final quiescence.
  cluster.set_trace_time_us(bursts * kTraceUsPerBurst);
  for (int i = 0; i < 64 && cluster.outage_node() >= 0; ++i) {
    (void)cluster.StepWrites(256);
  }
  if (power_loss_per_burst > 0.0) {
    // Suspect windows resolve on maintenance ticks: give the last burst's
    // restarted devices a few so every window ends as returned or expired
    // before the final counters are reported.
    (void)cluster.StepWrites(768);
  }
  cluster.ForceReconcile();
  const Status invariants = cluster.CheckInvariants();
  if (!invariants.ok()) {
    result.invariants_ok = false;
    note_violation("final: " + invariants.ToString());
  }
  if (cluster.pending_recovery_backlog() != 0) {
    result.converged = false;
    note_violation("final: recovery backlog not drained");
  }
  // Every non-lost chunk is fully replicated or explicitly parked waiting
  // for capacity — nothing falls through the cracks.
  if (cluster.chunks_under_replicated() > cluster.chunks_waiting_capacity()) {
    result.converged = false;
    note_violation("final: under-replicated chunks not tracked");
  }
  // The soak must actually exercise the recovery machinery (the crash drill
  // alone guarantees losses), or a regression that silently disables
  // recovery would still "pass".
  if (cluster.stats().replicas_recovered == 0) {
    result.converged = false;
    note_violation("final: soak exercised no recovery at all");
  }
  // Exact end-to-end integrity accounting: the FTL counts silent corruption
  // at the observation point and the cluster folds the counter after every
  // read it issues, so detection must equal injection to the last event —
  // any gap means a read path without checksum verification.
  uint64_t injected_read_corrupt = 0;
  for (const auto& injector : device_injectors) {
    injected_read_corrupt += injector->stats().count(FaultSite::kReadCorrupt);
  }
  if (cluster.stats().integrity_detected != injected_read_corrupt) {
    result.converged = false;
    note_violation(
        "final: integrity_detected " +
        std::to_string(cluster.stats().integrity_detected) +
        " != injected read_corrupt " + std::to_string(injected_read_corrupt));
  }
  // Exact power-loss accounting: every injector draw became exactly one
  // Crash(kPowerLoss), and every one of those ended as a successful restart
  // or a permanent upgrade — no outage can leak out of the ledger.
  if (power_loss_per_burst > 0.0) {
    uint64_t injected_power_loss = 0;
    for (const auto& injector : device_injectors) {
      injected_power_loss += injector->stats().count(FaultSite::kPowerLoss);
    }
    if (injected_power_loss != result.power_losses) {
      result.converged = false;
      note_violation("final: power_loss crashes " +
                     std::to_string(result.power_losses) +
                     " != injected power_loss " +
                     std::to_string(injected_power_loss));
    }
    uint64_t device_restarts = 0;
    for (uint32_t d = 0; d < cluster.device_count(); ++d) {
      device_restarts += cluster.device(d).restarts();
    }
    if (device_restarts != result.power_restarts) {
      result.converged = false;
      note_violation("final: device restarts " +
                     std::to_string(device_restarts) + " != harness restarts " +
                     std::to_string(result.power_restarts));
    }
    if (result.power_restarts + result.permanent_upgrades !=
        result.power_losses) {
      result.converged = false;
      note_violation("final: power-loss ledger does not balance");
    }
  }

  result.stats = cluster.stats();
  result.chunks = cluster.total_chunks();
  result.under_replicated = cluster.chunks_under_replicated();
  result.parked = cluster.chunks_waiting_capacity();
  result.devices_alive = cluster.alive_devices();
  for (const auto& injector : device_injectors) {
    result.injected_device_faults += injector->stats().total();
    for (int site = 0; site < FaultStats::kSites; ++site) {
      result.injected_by_site[site] += injector->stats().injected[site];
    }
  }
  result.injected_cluster_faults = config.faults->stats().total();
  for (int site = 0; site < FaultStats::kSites; ++site) {
    result.injected_by_site[site] += config.faults->stats().injected[site];
  }
  // Scrape the whole universe — difs stats, every device's subtree, and both
  // injector tiers — into the universe's own (thread-confined) registry.
  cluster.CollectMetrics(result.registry);
}

// ---- Correlated failure domains (--nodes-per-rack > 0 only) ---------------
//
// Two arms soak the same fault universe — identical cluster-fault and
// per-device fault stream families, and an identical rack-blackout /
// cohort-wave schedule (the domain injector is seeded and drawn in the same
// fixed order in both) — differing only in policy. The baseline arm places
// uniformly with reactive recovery only; the treatment arm uses the
// --placement policy (domain-spread by default) plus criticality-ordered
// recovery and, when --drain-health-threshold > 0, proactive health-driven
// drain. The harness demands an exact domain ledger per arm (injected rack
// events == blackouts executed, device restarts == harness restarts, crashes
// balance against restarts + bricks), zero chunk loss from the spread arm,
// and measurably less reactive recovery traffic from spread + drain than
// from the uniform baseline.
struct DomainArmResult {
  std::string placement;
  DifsStats stats;
  uint64_t chunks = 0;
  uint32_t devices_alive = 0;
  uint64_t rack_blackouts = 0;      // whole-rack power events executed
  uint64_t rack_crashes = 0;        // device crashes those events caused
  uint64_t cohort_waves = 0;        // cohort-unavailability events executed
  uint64_t cohort_crashes = 0;      // device crashes those waves caused
  uint64_t domain_restarts = 0;     // dark devices restarted at burst end
  uint64_t domain_bricks = 0;       // dark devices gone permanent meanwhile
  uint64_t injected_rack_events = 0;    // injector-side kRackPowerLoss
  uint64_t injected_cohort_events = 0;  // injector-side kCohortUnavailable
  bool converged = true;
  bool invariants_ok = true;
  bool ledger_exact = true;
  std::string first_violation;
  MetricRegistry registry;
};

void RunDomainArm(const std::string& placement_kind, uint64_t base_seed,
                  uint64_t bursts, uint64_t scrub_opages_per_day,
                  const SchedConfig& sched, uint32_t nodes_per_rack,
                  double rack_power_loss_per_burst,
                  double cohort_unavailable_per_burst, uint32_t batch_cohorts,
                  double batch_endurance_sigma, double drain_health_threshold,
                  DomainArmResult& result) {
  result.placement = placement_kind;
  const bool spread = placement_kind == "domain-spread";
  const SsdKind kind = SsdKind::kShrinkS;
  const auto note_violation = [&](const std::string& what) {
    if (result.first_violation.empty()) {
      result.first_violation = what;
    }
  };

  DifsConfig config;
  config.nodes = 6;
  config.devices_per_node = 1;
  config.replication = 3;
  config.chunk_opages = 256;
  config.fill_fraction = 0.45;
  // Both arms share one seed: identical fault families throughout, so the
  // placement / drain policy is the only difference between them.
  config.seed = base_seed + 977;
  config.faults = std::make_shared<FaultInjector>(ClusterFaults(config.seed),
                                                  /*stream_id=*/977);
  // Dark rack members are suspects, not corpses: power returns within the
  // burst, so the grace window reconciles them in place.
  config.suspect_grace_ticks = 8;
  config.sched = sched;
  config.nodes_per_rack = nodes_per_rack;
  config.placement = spread ? MakeDomainSpreadPlacement(nodes_per_rack)
                            : MakeUniformPlacement();
  if (spread) {
    config.criticality_ordered_recovery = true;
    config.drain_health_threshold = drain_health_threshold;
  }

  // Batch-cohort endurance variance: cohort c = device % cohorts shares one
  // latent wear factor, forked in cohort order from a root both arms derive
  // identically — whole batches age coherently, which is exactly the
  // correlated near-death pattern proactive drain is supposed to catch.
  const uint32_t cohorts = batch_cohorts > 0 ? batch_cohorts : 1;
  std::vector<double> cohort_factor(cohorts, 1.0);
  if (batch_cohorts > 0 && batch_endurance_sigma > 0.0) {
    Rng cohort_root(base_seed ^ 0xd0a2d0a2d0a2d0a2ULL);
    for (uint32_t c = 0; c < cohorts; ++c) {
      Rng fork = cohort_root.Fork();
      cohort_factor[c] = fork.LogNormal(0.0, batch_endurance_sigma);
    }
  }

  // Hotter wear than the main universes (nominal_pec 12 vs 40): the domain
  // arms exist to show batch-cohort endurance variance driving devices to
  // near-death *within* a soak-sized burst budget, so proactive drain has
  // something to catch and reactive recovery something to lose.
  FPageEccGeometry ecc;
  const WearModelConfig base_wear = WearModel::Calibrate(
      ComputeTirednessLevel(ecc, 0).max_tolerable_rber, /*nominal_pec=*/8);
  std::vector<std::shared_ptr<FaultInjector>> device_injectors;
  auto factory = [&](uint32_t index) {
    WearModelConfig wear = base_wear;
    wear.coefficient *= cohort_factor[index % cohorts];
    SsdConfig ssd_config =
        MakeSsdConfig(kind, FlashGeometry::Small(), wear, FlashLatencyConfig{},
                      ecc, 5000 + index * 17);
    ssd_config.minidisk.msize_opages = 256;
    ssd_config.minidisk.drain_before_decommission = true;
    ssd_config.minidisk.max_draining = 8;
    FaultConfig device_faults = DeviceFaults(config.seed, 0.0);
    device_faults.torn_journal_write = 0.6;  // blackout crashes tear tails
    ssd_config.faults = std::make_shared<FaultInjector>(
        device_faults, /*stream_id=*/977 * 64 + index);
    device_injectors.push_back(ssd_config.faults);
    return std::make_unique<SsdDevice>(kind, ssd_config);
  };

  DifsCluster cluster(config, factory);
  if (!cluster.Bootstrap().ok()) {
    result.converged = false;
    note_violation("bootstrap failed");
  }

  // The domain lottery: one injector per arm, seeded identically and drawn
  // in a fixed order (racks then cohorts, once per burst each, independent
  // of cluster state) — the draws ARE the schedule both arms share.
  FaultConfig domain_faults;
  domain_faults.rack_power_loss = rack_power_loss_per_burst;
  domain_faults.cohort_unavailable = cohort_unavailable_per_burst;
  domain_faults.seed = base_seed + 977;
  FaultInjector domain_injector(domain_faults, /*stream_id=*/7);

  const uint32_t device_count = cluster.device_count();
  const uint32_t racks = (device_count + nodes_per_rack - 1) / nodes_per_rack;

  constexpr uint64_t kWritesPerBurst = 500;
  constexpr uint64_t kReadsPerBurst = 250;
  for (uint64_t burst = 0; burst < bursts; ++burst) {
    if (cluster.alive_devices() < config.replication + 1) {
      break;  // fleet worn down to the edge; stop before losses are expected
    }
    cluster.set_trace_time_us(burst * kTraceUsPerBurst);
    std::vector<uint32_t> dark_devices;
    const auto crash_device = [&](uint32_t d, uint64_t& crash_counter) {
      if (cluster.device(d).failed()) {
        return;  // already dark or bricked: one crash per outage
      }
      cluster.device(d).Crash(SsdDevice::CrashKind::kPowerLoss);
      ++crash_counter;
      dark_devices.push_back(d);
    };
    for (uint32_t r = 0; r < racks; ++r) {
      if (!domain_injector.RackLosesPower()) {
        continue;
      }
      ++result.rack_blackouts;
      for (uint32_t d = r * nodes_per_rack;
           d < device_count && d / nodes_per_rack == r; ++d) {
        crash_device(d, result.rack_crashes);
      }
    }
    for (uint32_t c = 0; c < batch_cohorts; ++c) {
      if (!domain_injector.CohortGoesUnavailable()) {
        continue;
      }
      ++result.cohort_waves;
      for (uint32_t d = c; d < device_count; d += batch_cohorts) {
        crash_device(d, result.cohort_crashes);
      }
    }
    (void)cluster.StepWrites(kWritesPerBurst);
    (void)cluster.StepReads(kReadsPerBurst);
    (void)cluster.ScrubStep(scrub_opages_per_day);
    // Power restored: every dark domain member restarts (journal replay)
    // before the convergence check; anything no longer transiently dark went
    // permanent meanwhile and stays down.
    for (uint32_t d : dark_devices) {
      if (!cluster.device(d).transiently_dark()) {
        ++result.domain_bricks;
        continue;
      }
      if (cluster.device(d).Restart().ok()) {
        ++result.domain_restarts;
      } else {
        result.converged = false;
        note_violation("burst " + std::to_string(burst) +
                       ": post-blackout restart failed");
      }
    }
    cluster.ForceReconcile();
    const Status invariants = cluster.CheckInvariants();
    if (!invariants.ok()) {
      result.invariants_ok = false;
      note_violation("burst " + std::to_string(burst) + ": " +
                     invariants.ToString());
    }
    if (cluster.pending_recovery_backlog() != 0) {
      result.converged = false;
      note_violation("burst " + std::to_string(burst) +
                     ": recovery backlog not drained");
    }
  }
  // Outage expiry + suspect-window resolution, exactly as the power-loss
  // soak does before reading final counters.
  cluster.set_trace_time_us(bursts * kTraceUsPerBurst);
  for (int i = 0; i < 64 && cluster.outage_node() >= 0; ++i) {
    (void)cluster.StepWrites(256);
  }
  (void)cluster.StepWrites(768);
  cluster.ForceReconcile();
  const Status invariants = cluster.CheckInvariants();
  if (!invariants.ok()) {
    result.invariants_ok = false;
    note_violation("final: " + invariants.ToString());
  }
  if (cluster.pending_recovery_backlog() != 0) {
    result.converged = false;
    note_violation("final: recovery backlog not drained");
  }
  if (cluster.chunks_under_replicated() > cluster.chunks_waiting_capacity()) {
    result.converged = false;
    note_violation("final: under-replicated chunks not tracked");
  }

  // Exact domain ledger: the injector's event counts, the harness's blackout
  // tallies, and the devices' own restart counters must agree to the event.
  result.injected_rack_events =
      domain_injector.stats().count(FaultSite::kRackPowerLoss);
  result.injected_cohort_events =
      domain_injector.stats().count(FaultSite::kCohortUnavailable);
  if (result.injected_rack_events != result.rack_blackouts) {
    result.ledger_exact = false;
    note_violation("final: injected rack events " +
                   std::to_string(result.injected_rack_events) +
                   " != rack blackouts " +
                   std::to_string(result.rack_blackouts));
  }
  if (result.injected_cohort_events != result.cohort_waves) {
    result.ledger_exact = false;
    note_violation("final: injected cohort events " +
                   std::to_string(result.injected_cohort_events) +
                   " != cohort waves " + std::to_string(result.cohort_waves));
  }
  uint64_t device_restarts = 0;
  for (uint32_t d = 0; d < device_count; ++d) {
    device_restarts += cluster.device(d).restarts();
  }
  if (device_restarts != result.domain_restarts) {
    result.ledger_exact = false;
    note_violation("final: device restarts " +
                   std::to_string(device_restarts) + " != harness restarts " +
                   std::to_string(result.domain_restarts));
  }
  if (result.domain_restarts + result.domain_bricks !=
      result.rack_crashes + result.cohort_crashes) {
    result.ledger_exact = false;
    note_violation("final: domain crash ledger does not balance");
  }

  result.stats = cluster.stats();
  result.chunks = cluster.total_chunks();
  result.devices_alive = cluster.alive_devices();
  cluster.CollectMetrics(result.registry);
}

// Bounded-L2P cross-check (--l2p-cache-entries > 0 only): an identical op
// sequence runs on a legacy (unbounded-map) FTL and a bounded one, in a
// configuration roomy enough that GC never fires — so map-page write-back is
// the *only* source of extra flash programs, and the wear delta must equal
// ftl.l2p.map_writes exactly. The exported ftl.l2p.* registry values are
// then reconciled against the FTL's internal ledger, counter by counter.
struct L2pCrossCheckResult {
  uint64_t map_writes = 0;
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  uint64_t legacy_programs = 0;
  uint64_t bounded_programs = 0;
  bool wear_exact = false;
  bool telemetry_exact = false;
  std::string violation;
};

L2pCrossCheckResult RunL2pCrossCheck(uint64_t cache_entries, uint64_t seed) {
  L2pCrossCheckResult out;
  FtlConfig config;
  config.geometry.channels = 1;
  config.geometry.dies_per_channel = 1;
  config.geometry.planes_per_die = 1;
  config.geometry.blocks_per_plane = 16;
  config.geometry.fpages_per_block = 16;
  config.ecc_geometry = FPageEccGeometry{};
  config.wear = WearModel::Calibrate(
      ComputeTirednessLevel(config.ecc_geometry, 0).max_tolerable_rber,
      /*nominal_pec=*/1000000);
  config.seed = seed;
  Ftl legacy(config);
  FtlConfig bounded_config = config;
  bounded_config.l2p_cache_entries = cache_entries;
  bounded_config.l2p_entries_per_map_page = 64;  // 4 map pages over 256 lpos
  Ftl bounded(bounded_config);

  constexpr uint64_t kLogicalOPages = 256;
  legacy.ExtendLogicalSpace(kLogicalOPages);
  bounded.ExtendLogicalSpace(kLogicalOPages);
  Rng ops(seed ^ 0x12bca);
  for (uint64_t i = 0; i < 384; ++i) {
    const uint64_t lpo = i % kLogicalOPages;  // strided map-page transitions
    const uint64_t kind = ops.UniformInRange(0, 99);
    if (kind < 80) {
      if (!legacy.Write(lpo).ok() || !bounded.Write(lpo).ok()) {
        out.violation = "l2p cross-check: write failed at op " +
                        std::to_string(i);
        return out;
      }
    } else if (kind < 90) {
      (void)legacy.Read(lpo);
      (void)bounded.Read(lpo);
    } else if (kind < 96) {
      if (!legacy.Trim(lpo).ok() || !bounded.Trim(lpo).ok()) {
        out.violation = "l2p cross-check: trim failed at op " +
                        std::to_string(i);
        return out;
      }
    } else {
      if (!legacy.Flush().ok() || !bounded.Flush().ok()) {
        out.violation = "l2p cross-check: flush failed at op " +
                        std::to_string(i);
        return out;
      }
    }
  }
  // The exact-wear argument requires GC-free runs on both sides.
  if (legacy.stats().gc_relocations != 0 ||
      bounded.stats().gc_relocations != 0) {
    out.violation = "l2p cross-check: GC fired in the roomy config";
    return out;
  }

  const Ftl::L2pStats& ledger = bounded.l2p_stats();
  out.map_writes = ledger.map_writes;
  out.hits = ledger.hits;
  out.misses = ledger.misses;
  out.evictions = ledger.evictions;
  out.legacy_programs = legacy.chip().total_programs();
  out.bounded_programs = bounded.chip().total_programs();
  out.wear_exact =
      out.bounded_programs == out.legacy_programs + ledger.map_writes &&
      ledger.map_writes > 0;
  if (!out.wear_exact) {
    out.violation = "l2p cross-check: program delta " +
                    std::to_string(out.bounded_programs -
                                   out.legacy_programs) +
                    " != map_writes " + std::to_string(ledger.map_writes);
    return out;
  }

  // Exported metrics must mirror the internal ledger to the last event.
  MetricRegistry registry;
  bounded.CollectMetrics(registry, "");
  const auto counter = [&](const char* name) {
    const Counter* c = registry.FindCounter(name);
    return c != nullptr ? c->value() : 0;
  };
  out.telemetry_exact =
      counter("ftl.l2p.hits") == ledger.hits &&
      counter("ftl.l2p.misses") == ledger.misses &&
      counter("ftl.l2p.evictions") == ledger.evictions &&
      counter("ftl.l2p.map_writes") == ledger.map_writes &&
      counter("ftl.l2p.replay_rebuilt_pages") == ledger.replay_rebuilt_pages;
  if (!out.telemetry_exact) {
    out.violation =
        "l2p cross-check: exported ftl.l2p.* diverge from the ledger";
  }
  return out;
}

}  // namespace
}  // namespace salamander

int main(int argc, char** argv) {
  using namespace salamander;
  bench::PrintHeader(
      "Chaos soak — fault injection vs. diFS recovery",
      "with concurrent failures < R, the cluster loses zero chunks and "
      "recovery converges after every fault burst");
  ThreadPool pool(bench::ParseThreads(argc, argv));
  const uint64_t universes = bench::ParseU64Flag(argc, argv, "--universes", 6);
  const uint64_t bursts = bench::ParseU64Flag(argc, argv, "--bursts", 12);
  const uint64_t seed = bench::ParseU64Flag(argc, argv, "--seed", 20250805);
  // oPages each universe scrubs per burst; 0 (the default) disables scrub.
  const uint64_t scrub_opages_per_day =
      bench::ParseScrubOPagesPerDay(argc, argv);
  // Per-device, per-burst transient power-loss probability. 0 (the default)
  // draws nothing: the soak is byte-identical to one without the
  // crash-restart machinery. > 0 adds the power-loss lottery, torn journal
  // writes on every crash, and suspect-window reconciliation.
  const double power_loss_per_burst =
      bench::ParseF64Flag(argc, argv, "--power-loss-per-burst", 0.0);
  // DRAM window for the bounded L2P cross-check. 0 (the default) skips the
  // cross-check entirely: the soak output stays byte-identical to builds
  // without the bounded cache.
  const uint64_t l2p_cache_entries = bench::ParseL2pCacheEntries(argc, argv);
  // Correlated failure domains (--nodes-per-rack > 0 only). All knobs
  // default to off/zero and parse strictly even when the section is
  // disabled; with everything at defaults the domain arms never run, no
  // extra RNG streams exist, and the soak output is byte-identical to
  // builds without the feature.
  const uint64_t nodes_per_rack =
      bench::ParseU64Flag(argc, argv, "--nodes-per-rack", 0);
  const double rack_power_loss_per_burst =
      bench::ParseFractionFlag(argc, argv, "--rack-power-loss-per-burst", 0.0);
  const double cohort_unavailable_per_burst = bench::ParseFractionFlag(
      argc, argv, "--cohort-unavailable-per-burst", 0.0);
  const uint64_t batch_cohorts =
      bench::ParseU64Flag(argc, argv, "--batch-cohorts", 0);
  const double batch_endurance_sigma =
      bench::ParseF64Flag(argc, argv, "--batch-endurance-sigma", 0.0);
  const double drain_health_threshold =
      bench::ParseFractionFlag(argc, argv, "--drain-health-threshold", 0.0);
  // Placement policy of the *treatment* arm; the baseline arm is always
  // uniform. Defaults to domain-spread — the policy the section exists to
  // demonstrate.
  const std::string placement_kind =
      bench::ParsePlacementFlag(argc, argv, "domain-spread");
  // Per-device queueing / graceful degradation (--queue-depth > 0 only).
  // Microsecond knobs map onto SchedConfig's ns fields; shed-retry policy
  // keeps the library defaults.
  const bench::SchedFlagValues sched_flags =
      bench::ParseSchedFlags(argc, argv);
  SchedConfig sched;
  sched.queue_depth = sched_flags.queue_depth;
  sched.arrival_interval_ns = sched_flags.arrival_interval_us * kMicrosecond;
  sched.hedge_threshold_ns = sched_flags.hedge_threshold_us * kMicrosecond;
  sched.slo_p99_ns = sched_flags.slo_p99_us * kMicrosecond;
  sched.brownout_window_ops = sched_flags.brownout_window_ops;
  sched.retry_jitter_ns = sched_flags.retry_jitter_us * kMicrosecond;
  {
    const Status sched_valid = ValidateSchedConfig(sched);
    if (!sched_valid.ok()) {
      std::fprintf(stderr, "error: invalid sched config: %s\n",
                   sched_valid.message().c_str());
      return 2;
    }
  }
  const std::string metrics_out = bench::ParseStringFlag(
      argc, argv, "--metrics-out", "BENCH_chaos_metrics.json");
  const std::string trace_out = bench::ParseStringFlag(
      argc, argv, "--trace-out", "BENCH_chaos_trace.json");

  // The integrity machinery the soak leans on is only as good as the codec:
  // gate the run on the codec's randomized self-test.
  const Status codec_ok = ChecksumSelfTest(seed, /*rounds=*/256);
  if (!codec_ok.ok()) {
    std::fprintf(stderr, "checksum self-test failed: %s\n",
                 codec_ok.ToString().c_str());
    return 1;
  }

  std::vector<UniverseResult> results(universes);
  pool.ParallelFor(universes, [&](size_t begin, size_t end) {
    for (size_t u = begin; u < end; ++u) {
      RunUniverse(u, seed, bursts, scrub_opages_per_day, power_loss_per_burst,
                  sched, results[u]);
    }
  });

  // Barrier merge, in universe order: per-universe registries aggregate
  // (counters add) into the exported fleet-wide registry; traces append.
  MetricRegistry merged;
  TraceRecorder merged_trace;
  for (const UniverseResult& r : results) {
    merged.MergeFrom(r.registry);
    merged_trace.MergeFrom(r.trace);
  }

  std::printf(
      "universe\tkind\tchunks\tlost\tunder_repl\tparked\trecovered\t"
      "dev_faults\tclu_faults\tresyncs\trepairs\tretries\toutages\t"
      "acks_lost\tcorrupt\tmarked_bad\tscrub_reads\tscrub_hits\talive\t"
      "status\n");
  bool pass = true;
  for (uint64_t u = 0; u < universes; ++u) {
    const UniverseResult& r = results[u];
    const bool ok = r.invariants_ok && r.converged && r.stats.chunks_lost == 0;
    pass = pass && ok;
    std::printf(
        "%llu\t%s\t%llu\t%llu\t%llu\t%llu\t%llu\t%llu\t%llu\t%llu\t%llu\t"
        "%llu\t%llu\t%llu\t%llu\t%llu\t%llu\t%llu\t%u\t%s\n",
        static_cast<unsigned long long>(u),
        std::string(SsdKindName(r.kind)).c_str(),
        static_cast<unsigned long long>(r.chunks),
        static_cast<unsigned long long>(r.stats.chunks_lost),
        static_cast<unsigned long long>(r.under_replicated),
        static_cast<unsigned long long>(r.parked),
        static_cast<unsigned long long>(r.stats.replicas_recovered),
        static_cast<unsigned long long>(r.injected_device_faults),
        static_cast<unsigned long long>(r.injected_cluster_faults),
        static_cast<unsigned long long>(r.stats.resync_passes),
        static_cast<unsigned long long>(r.stats.resync_repairs),
        static_cast<unsigned long long>(r.stats.transient_retries),
        static_cast<unsigned long long>(r.stats.node_outages),
        static_cast<unsigned long long>(r.stats.acks_lost),
        static_cast<unsigned long long>(r.stats.integrity_detected),
        static_cast<unsigned long long>(r.stats.integrity_marked_bad),
        static_cast<unsigned long long>(r.stats.scrub_opage_reads),
        static_cast<unsigned long long>(r.stats.scrub_detected),
        r.devices_alive, ok ? "OK" : "FAIL");
    if (!ok) {
      std::printf("  violation: %s\n", r.first_violation.c_str());
    }
  }

  bench::PrintSection("injected fault mix (all universes)");
  uint64_t by_site[FaultStats::kSites] = {};
  for (const UniverseResult& r : results) {
    for (int site = 0; site < FaultStats::kSites; ++site) {
      by_site[site] += r.injected_by_site[site];
    }
  }
  // Reported from the merged registry — and cross-checked against the
  // injectors' own counters, so a telemetry double-collect or missed site
  // fails the soak.
  for (int site = 0; site < FaultStats::kSites; ++site) {
    const std::string site_name(FaultSiteName(static_cast<FaultSite>(site)));
    const Counter* device_tier =
        merged.FindCounter("faults.injected." + site_name);
    const Counter* cluster_tier =
        merged.FindCounter("cluster_faults.injected." + site_name);
    const uint64_t from_registry =
        (device_tier != nullptr ? device_tier->value() : 0) +
        (cluster_tier != nullptr ? cluster_tier->value() : 0);
    // Sites appended after the output format froze only print once they
    // actually fire (matches the CollectFaultMetrics gating).
    if (site >= static_cast<int>(FaultSite::kPowerLoss) &&
        from_registry == 0 && by_site[site] == 0) {
      continue;
    }
    std::printf("%-22s\t%llu\n", site_name.c_str(),
                static_cast<unsigned long long>(from_registry));
    if (from_registry != by_site[site]) {
      pass = false;
      std::printf("  TELEMETRY MISMATCH: injector counted %llu\n",
                  static_cast<unsigned long long>(by_site[site]));
    }
  }

  bench::PrintSection("end-to-end integrity reconciliation");
  // Fleet-wide exactness, from the merged registry alone: every silently
  // corrupt read the device injectors produced was caught by checksum
  // verification somewhere — foreground read-repair, recovery, or scrub.
  const Counter* detected_counter =
      merged.FindCounter("difs.integrity.detected");
  const Counter* injected_counter =
      merged.FindCounter("faults.injected.read_corrupt");
  const uint64_t detected_total =
      detected_counter != nullptr ? detected_counter->value() : 0;
  const uint64_t injected_total =
      injected_counter != nullptr ? injected_counter->value() : 0;
  std::printf("read_corrupt injected\t%llu\n",
              static_cast<unsigned long long>(injected_total));
  std::printf("integrity detected\t%llu\n",
              static_cast<unsigned long long>(detected_total));
  std::printf("replicas marked bad\t%llu\n",
              static_cast<unsigned long long>(
                  merged.GetCounter("difs.integrity.marked_bad").value()));
  std::printf("last copies retained\t%llu\n",
              static_cast<unsigned long long>(
                  merged.GetCounter("difs.integrity.retained_last_copies")
                      .value()));
  std::printf("scrub reads / hits / passes\t%llu / %llu / %llu\n",
              static_cast<unsigned long long>(
                  merged.GetCounter("difs.scrub.opage_reads").value()),
              static_cast<unsigned long long>(
                  merged.GetCounter("difs.scrub.detected").value()),
              static_cast<unsigned long long>(
                  merged.GetCounter("difs.scrub.passes").value()));
  if (detected_total != injected_total) {
    pass = false;
    std::printf("  INTEGRITY MISMATCH: detection must equal injection\n");
  }

  uint64_t power_losses_total = 0;
  uint64_t power_restarts_total = 0;
  uint64_t permanent_upgrades_total = 0;
  if (power_loss_per_burst > 0.0) {
    bench::PrintSection("power-loss reconciliation");
    for (const UniverseResult& r : results) {
      power_losses_total += r.power_losses;
      power_restarts_total += r.power_restarts;
      permanent_upgrades_total += r.permanent_upgrades;
    }
    const Counter* power_loss_counter =
        merged.FindCounter("faults.injected.power_loss");
    const uint64_t power_loss_injected =
        power_loss_counter != nullptr ? power_loss_counter->value() : 0;
    std::printf("power_loss injected\t%llu\n",
                static_cast<unsigned long long>(power_loss_injected));
    std::printf("crashes / restarts / fatal\t%llu / %llu / %llu\n",
                static_cast<unsigned long long>(power_losses_total),
                static_cast<unsigned long long>(power_restarts_total),
                static_cast<unsigned long long>(permanent_upgrades_total));
    std::printf("journal replays\t%llu\n",
                static_cast<unsigned long long>(
                    merged.GetCounter("ftl.journal.replays").value()));
    if (power_loss_injected != power_losses_total ||
        power_restarts_total + permanent_upgrades_total !=
            power_losses_total) {
      pass = false;
      std::printf("  POWER-LOSS MISMATCH: every injected outage must end as "
                  "a restart or a brick\n");
    }
  }

  uint64_t sched_sheds_total = 0;
  uint64_t sched_giveups_total = 0;
  uint64_t sched_hedged_total = 0;
  uint64_t sched_hedge_wins_total = 0;
  bool sched_ledger_exact = true;
  if (sched.enabled()) {
    bench::PrintSection("queueing & graceful degradation reconciliation");
    // Harness-side sums, straight from each universe's DifsStats.
    uint64_t harness_read_sheds = 0;
    uint64_t harness_write_sheds = 0;
    uint64_t harness_recovery_sheds = 0;
    uint64_t harness_scrub_sheds = 0;
    uint64_t harness_wait_ns = 0;
    for (const UniverseResult& r : results) {
      harness_read_sheds += r.stats.sched_read_sheds;
      harness_write_sheds += r.stats.sched_write_sheds;
      harness_recovery_sheds += r.stats.sched_recovery_sheds;
      harness_scrub_sheds += r.stats.sched_scrub_sheds;
      harness_wait_ns += r.stats.sched_wait_ns;
      sched_hedged_total += r.stats.sched_hedged_reads;
      sched_hedge_wins_total += r.stats.sched_hedge_wins;
    }
    sched_sheds_total = harness_read_sheds + harness_write_sheds +
                        harness_recovery_sheds + harness_scrub_sheds;
    // Registry side: cluster-level shed classes and the per-device queue
    // giveup counter, both merged additively across universes.
    const auto counter = [&](const char* name) {
      const Counter* c = merged.FindCounter(name);
      return c != nullptr ? c->value() : 0;
    };
    const uint64_t exported_sheds = counter("difs.sched.read_sheds") +
                                    counter("difs.sched.write_sheds") +
                                    counter("difs.sched.recovery_sheds") +
                                    counter("difs.sched.scrub_sheds");
    sched_giveups_total = counter("ssd.sched.shed_giveups");
    std::printf("queue_depth=%llu arrival_interval_us=%llu "
                "hedge_threshold_us=%llu slo_p99_us=%llu\n",
                static_cast<unsigned long long>(sched_flags.queue_depth),
                static_cast<unsigned long long>(
                    sched_flags.arrival_interval_us),
                static_cast<unsigned long long>(
                    sched_flags.hedge_threshold_us),
                static_cast<unsigned long long>(sched_flags.slo_p99_us));
    std::printf("sheds (read/write/recovery/scrub)\t%llu / %llu / %llu / "
                "%llu\n",
                static_cast<unsigned long long>(harness_read_sheds),
                static_cast<unsigned long long>(harness_write_sheds),
                static_cast<unsigned long long>(harness_recovery_sheds),
                static_cast<unsigned long long>(harness_scrub_sheds));
    std::printf("device queue giveups\t%llu\n",
                static_cast<unsigned long long>(sched_giveups_total));
    std::printf("hedged reads / wins\t%llu / %llu\n",
                static_cast<unsigned long long>(sched_hedged_total),
                static_cast<unsigned long long>(sched_hedge_wins_total));
    std::printf("brownout entered / exited\t%llu / %llu\n",
                static_cast<unsigned long long>(
                    counter("difs.sched.brownout_entered")),
                static_cast<unsigned long long>(
                    counter("difs.sched.brownout_exited")));
    // Exactness, not plausibility: every shed the clusters counted is one
    // giveup at exactly one device queue (hedges pre-check room and
    // ForceReconcile bypasses admission, so neither produces giveups), and
    // the exported registry mirrors the harness ledger event for event.
    if (exported_sheds != sched_sheds_total) {
      sched_ledger_exact = false;
      std::printf("  SCHED MISMATCH: exported sheds %llu != harness %llu\n",
                  static_cast<unsigned long long>(exported_sheds),
                  static_cast<unsigned long long>(sched_sheds_total));
    }
    if (sched_giveups_total != sched_sheds_total) {
      sched_ledger_exact = false;
      std::printf("  SCHED MISMATCH: device giveups %llu != cluster sheds "
                  "%llu\n",
                  static_cast<unsigned long long>(sched_giveups_total),
                  static_cast<unsigned long long>(sched_sheds_total));
    }
    if (counter("difs.sched.wait_ns") != harness_wait_ns) {
      sched_ledger_exact = false;
      std::printf("  SCHED MISMATCH: exported wait_ns != harness ledger\n");
    }
    if (counter("difs.sched.hedged_reads") != sched_hedged_total ||
        counter("difs.sched.hedge_wins") != sched_hedge_wins_total ||
        sched_hedge_wins_total > sched_hedged_total) {
      sched_ledger_exact = false;
      std::printf("  SCHED MISMATCH: hedge ledger does not reconcile\n");
    }
    std::printf("shed/hedge ledger exact\t%s\n",
                sched_ledger_exact ? "YES" : "NO");
    pass = pass && sched_ledger_exact;
  }

  L2pCrossCheckResult l2p;
  if (l2p_cache_entries > 0) {
    bench::PrintSection("bounded-L2P cross-check");
    l2p = RunL2pCrossCheck(l2p_cache_entries, seed);
    std::printf("l2p_cache_entries\t%llu\n",
                static_cast<unsigned long long>(l2p_cache_entries));
    std::printf("hits / misses / evictions\t%llu / %llu / %llu\n",
                static_cast<unsigned long long>(l2p.hits),
                static_cast<unsigned long long>(l2p.misses),
                static_cast<unsigned long long>(l2p.evictions));
    std::printf("map-page programs\t%llu\n",
                static_cast<unsigned long long>(l2p.map_writes));
    std::printf("flash programs (legacy / bounded)\t%llu / %llu\n",
                static_cast<unsigned long long>(l2p.legacy_programs),
                static_cast<unsigned long long>(l2p.bounded_programs));
    std::printf("map-write wear exact\t%s\n", l2p.wear_exact ? "YES" : "NO");
    std::printf("exported == ledger\t%s\n",
                l2p.telemetry_exact ? "YES" : "NO");
    if (!l2p.wear_exact || !l2p.telemetry_exact) {
      pass = false;
      std::printf("  L2P MISMATCH: %s\n", l2p.violation.c_str());
    }
  }

  std::vector<DomainArmResult> domain_arms;
  bool domain_ledger_exact = true;
  if (nodes_per_rack > 0) {
    bench::PrintSection("correlated failure domains");
    // Arm 0: uniform placement, reactive recovery only. Arm 1: the
    // --placement policy plus criticality-ordered recovery and proactive
    // drain. Same seeds, same blackout/wave schedule; thread-confined
    // registries merged here after the barrier, in arm order.
    domain_arms.resize(2);
    const std::string arm_policies[2] = {"uniform", placement_kind};
    pool.ParallelFor(2, [&](size_t begin, size_t end) {
      for (size_t a = begin; a < end; ++a) {
        RunDomainArm(arm_policies[a], seed, bursts, scrub_opages_per_day,
                     sched, static_cast<uint32_t>(nodes_per_rack),
                     rack_power_loss_per_burst, cohort_unavailable_per_burst,
                     static_cast<uint32_t>(batch_cohorts),
                     batch_endurance_sigma, drain_health_threshold,
                     domain_arms[a]);
      }
    });
    std::printf("nodes_per_rack=%llu rack_power_loss_per_burst=%g "
                "cohort_unavailable_per_burst=%g batch_cohorts=%llu "
                "batch_endurance_sigma=%g drain_health_threshold=%g\n",
                static_cast<unsigned long long>(nodes_per_rack),
                rack_power_loss_per_burst, cohort_unavailable_per_burst,
                static_cast<unsigned long long>(batch_cohorts),
                batch_endurance_sigma, drain_health_threshold);
    for (const DomainArmResult& arm : domain_arms) {
      const auto counter = [&](const char* name) {
        const Counter* c = arm.registry.FindCounter(name);
        return c != nullptr ? c->value() : 0;
      };
      std::printf("placement=%s\n", arm.placement.c_str());
      std::printf("  chunks / lost / alive\t%llu / %llu / %u\n",
                  static_cast<unsigned long long>(arm.chunks),
                  static_cast<unsigned long long>(arm.stats.chunks_lost),
                  arm.devices_alive);
      std::printf("  rack blackouts / crashes\t%llu / %llu (injected %llu)\n",
                  static_cast<unsigned long long>(arm.rack_blackouts),
                  static_cast<unsigned long long>(arm.rack_crashes),
                  static_cast<unsigned long long>(arm.injected_rack_events));
      if (batch_cohorts > 0) {
        std::printf(
            "  cohort waves / crashes\t%llu / %llu (injected %llu)\n",
            static_cast<unsigned long long>(arm.cohort_waves),
            static_cast<unsigned long long>(arm.cohort_crashes),
            static_cast<unsigned long long>(arm.injected_cohort_events));
      }
      std::printf("  restarts / bricks\t%llu / %llu\n",
                  static_cast<unsigned long long>(arm.domain_restarts),
                  static_cast<unsigned long long>(arm.domain_bricks));
      std::printf("  reactive recovery opage writes\t%llu\n",
                  static_cast<unsigned long long>(
                      counter("difs.recovery_opage_writes")));
      std::printf("  proactive drain opage writes\t%llu\n",
                  static_cast<unsigned long long>(
                      counter("difs.drain.opage_writes")));
      std::printf("  drain flagged / completed / migrated\t%llu / %llu / "
                  "%llu\n",
                  static_cast<unsigned long long>(
                      counter("difs.drain.devices_flagged")),
                  static_cast<unsigned long long>(
                      counter("difs.drain.devices_completed")),
                  static_cast<unsigned long long>(
                      counter("difs.drain.replicas_migrated")));
      std::printf("  placement rejections / fallbacks\t%llu / %llu\n",
                  static_cast<unsigned long long>(
                      counter("difs.placement.domain_rejections")),
                  static_cast<unsigned long long>(
                      counter("difs.placement.domain_fallbacks")));
      domain_ledger_exact = domain_ledger_exact && arm.ledger_exact;
      if (!(arm.invariants_ok && arm.converged && arm.ledger_exact)) {
        pass = false;
        std::printf("  DOMAIN VIOLATION: %s\n", arm.first_violation.c_str());
      }
      // The headline robustness claim: domain-spread placement survives
      // correlated whole-rack blackouts with zero chunk loss.
      if (arm.placement == "domain-spread" && arm.stats.chunks_lost != 0) {
        pass = false;
        std::printf("  DOMAIN VIOLATION: domain-spread lost chunks under "
                    "correlated blackouts\n");
      }
    }
    // The acceptance comparison: spread + proactive drain must spend
    // measurably less reactive recovery I/O than the uniform baseline on the
    // same fault universe (the drain's migrations are accounted separately).
    if (placement_kind == "domain-spread" && drain_health_threshold > 0.0) {
      const uint64_t baseline_reactive =
          domain_arms[0].stats.recovery_opage_writes;
      const uint64_t treatment_reactive =
          domain_arms[1].stats.recovery_opage_writes;
      std::printf("reactive recovery writes (uniform vs domain-spread+drain)"
                  "\t%llu vs %llu\n",
                  static_cast<unsigned long long>(baseline_reactive),
                  static_cast<unsigned long long>(treatment_reactive));
      if (treatment_reactive >= baseline_reactive) {
        pass = false;
        std::printf("  DOMAIN VIOLATION: proactive drain did not reduce "
                    "reactive recovery traffic\n");
      }
    }
  }

  if (!merged.WriteJsonFile(metrics_out)) {
    std::fprintf(stderr, "cannot write %s\n", metrics_out.c_str());
    pass = false;
  }
  if (!merged_trace.WriteJsonFile(trace_out)) {
    std::fprintf(stderr, "cannot write %s\n", trace_out.c_str());
    pass = false;
  }
  std::printf("\nwrote %s (%zu instruments), %s (%zu events)\n",
              metrics_out.c_str(), merged.instrument_count(),
              trace_out.c_str(), merged_trace.event_count());

  FILE* summary = std::fopen("BENCH_chaos.json", "w");
  if (summary == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_chaos.json\n");
    pass = false;
  } else {
    std::fprintf(summary,
                 "{\n"
                 "  \"bench\": \"chaos_soak\",\n"
                 "  \"universes\": %llu,\n"
                 "  \"bursts\": %llu,\n"
                 "  \"seed\": %llu,\n"
                 "  \"scrub_opages_per_day\": %llu,\n"
                 "  \"chunks_lost\": %llu,\n"
                 "  \"replicas_recovered\": %llu,\n"
                 "  \"faults_injected_total\": %llu,\n"
                 "  \"read_corrupt_injected\": %llu,\n"
                 "  \"integrity_detected\": %llu,\n"
                 "  \"integrity_marked_bad\": %llu,\n"
                 "  \"scrub_opage_reads\": %llu,\n"
                 "  \"scrub_detected\": %llu,\n",
                 static_cast<unsigned long long>(universes),
                 static_cast<unsigned long long>(bursts),
                 static_cast<unsigned long long>(seed),
                 static_cast<unsigned long long>(scrub_opages_per_day),
                 static_cast<unsigned long long>(
                     merged.GetCounter("difs.chunks_lost").value()),
                 static_cast<unsigned long long>(
                     merged.GetCounter("difs.replicas_recovered").value()),
                 static_cast<unsigned long long>(
                     merged.GetCounter("faults.injected_total").value() +
                     merged.GetCounter("cluster_faults.injected_total")
                         .value()),
                 static_cast<unsigned long long>(injected_total),
                 static_cast<unsigned long long>(detected_total),
                 static_cast<unsigned long long>(
                     merged.GetCounter("difs.integrity.marked_bad").value()),
                 static_cast<unsigned long long>(
                     merged.GetCounter("difs.scrub.opage_reads").value()),
                 static_cast<unsigned long long>(
                     merged.GetCounter("difs.scrub.detected").value()));
    if (power_loss_per_burst > 0.0) {
      std::fprintf(summary,
                   "  \"power_loss_per_burst\": %g,\n"
                   "  \"power_losses\": %llu,\n"
                   "  \"power_restarts\": %llu,\n"
                   "  \"power_loss_bricks\": %llu,\n"
                   "  \"journal_replays\": %llu,\n",
                   power_loss_per_burst,
                   static_cast<unsigned long long>(power_losses_total),
                   static_cast<unsigned long long>(power_restarts_total),
                   static_cast<unsigned long long>(permanent_upgrades_total),
                   static_cast<unsigned long long>(
                       merged.GetCounter("ftl.journal.replays").value()));
    }
    if (sched.enabled()) {
      std::fprintf(summary,
                   "  \"queue_depth\": %llu,\n"
                   "  \"sched_sheds_total\": %llu,\n"
                   "  \"sched_shed_giveups\": %llu,\n"
                   "  \"sched_hedged_reads\": %llu,\n"
                   "  \"sched_hedge_wins\": %llu,\n"
                   "  \"sched_ledger_exact\": %s,\n",
                   static_cast<unsigned long long>(sched.queue_depth),
                   static_cast<unsigned long long>(sched_sheds_total),
                   static_cast<unsigned long long>(sched_giveups_total),
                   static_cast<unsigned long long>(sched_hedged_total),
                   static_cast<unsigned long long>(sched_hedge_wins_total),
                   sched_ledger_exact ? "true" : "false");
    }
    if (nodes_per_rack > 0) {
      const auto arm_counter = [&](const DomainArmResult& arm,
                                   const char* name) {
        const Counter* c = arm.registry.FindCounter(name);
        return static_cast<unsigned long long>(c != nullptr ? c->value() : 0);
      };
      std::fprintf(
          summary,
          "  \"nodes_per_rack\": %llu,\n"
          "  \"rack_power_loss_per_burst\": %g,\n"
          "  \"cohort_unavailable_per_burst\": %g,\n"
          "  \"batch_cohorts\": %llu,\n"
          "  \"batch_endurance_sigma\": %g,\n"
          "  \"drain_health_threshold\": %g,\n"
          "  \"domain_placement\": \"%s\",\n"
          "  \"domain_rack_blackouts\": %llu,\n"
          "  \"domain_rack_crashes\": %llu,\n"
          "  \"domain_cohort_waves\": %llu,\n"
          "  \"domain_restarts\": %llu,\n"
          "  \"chunks_lost_baseline\": %llu,\n"
          "  \"chunks_lost_treatment\": %llu,\n"
          "  \"recovery_writes_baseline\": %llu,\n"
          "  \"recovery_writes_treatment\": %llu,\n"
          "  \"drain_writes_treatment\": %llu,\n"
          "  \"drain_devices_flagged\": %llu,\n"
          "  \"domain_ledger_exact\": %s,\n",
          static_cast<unsigned long long>(nodes_per_rack),
          rack_power_loss_per_burst, cohort_unavailable_per_burst,
          static_cast<unsigned long long>(batch_cohorts),
          batch_endurance_sigma, drain_health_threshold,
          domain_arms[1].placement.c_str(),
          static_cast<unsigned long long>(domain_arms[1].rack_blackouts),
          static_cast<unsigned long long>(domain_arms[1].rack_crashes),
          static_cast<unsigned long long>(domain_arms[1].cohort_waves),
          static_cast<unsigned long long>(domain_arms[1].domain_restarts),
          static_cast<unsigned long long>(domain_arms[0].stats.chunks_lost),
          static_cast<unsigned long long>(domain_arms[1].stats.chunks_lost),
          arm_counter(domain_arms[0], "difs.recovery_opage_writes"),
          arm_counter(domain_arms[1], "difs.recovery_opage_writes"),
          arm_counter(domain_arms[1], "difs.drain.opage_writes"),
          arm_counter(domain_arms[1], "difs.drain.devices_flagged"),
          domain_ledger_exact ? "true" : "false");
    }
    if (l2p_cache_entries > 0) {
      std::fprintf(summary,
                   "  \"l2p_cache_entries\": %llu,\n"
                   "  \"l2p_hits\": %llu,\n"
                   "  \"l2p_misses\": %llu,\n"
                   "  \"l2p_evictions\": %llu,\n"
                   "  \"l2p_map_writes\": %llu,\n"
                   "  \"l2p_wear_exact\": %s,\n"
                   "  \"l2p_telemetry_exact\": %s,\n",
                   static_cast<unsigned long long>(l2p_cache_entries),
                   static_cast<unsigned long long>(l2p.hits),
                   static_cast<unsigned long long>(l2p.misses),
                   static_cast<unsigned long long>(l2p.evictions),
                   static_cast<unsigned long long>(l2p.map_writes),
                   l2p.wear_exact ? "true" : "false",
                   l2p.telemetry_exact ? "true" : "false");
    }
    std::fprintf(summary,
                 "  \"metrics_file\": \"%s\",\n"
                 "  \"trace_file\": \"%s\",\n"
                 "  \"pass\": %s\n"
                 "}\n",
                 metrics_out.c_str(), trace_out.c_str(),
                 pass ? "true" : "false");
    std::fclose(summary);
    std::printf("wrote BENCH_chaos.json\n");
  }

  bench::PrintSection("verdict");
  std::printf("CHAOS SOAK: %s\n", pass ? "PASS" : "FAIL");
  std::printf(
      "Determinism contract: this output is byte-identical for any --threads\n"
      "value and across repeated runs with the same --seed.\n");
  return pass ? 0 : 1;
}
